//! The serializable on-disk workload format.
//!
//! Two document kinds, both JSON (rendered/parsed through the `serde` compat shim's
//! [`json`] module):
//!
//! * **`p2pgrid-workflow/v1`** — one DAG: named tasks (`load_mi`, `image_size_mb`, optional
//!   `priority`) plus `[from, to, data_mb]` edges.  [`WorkflowSpec`] round-trips to/from the
//!   validated runtime [`Workflow`]: `import` funnels through [`WorkflowBuilder`], so cycles,
//!   duplicate edges, self-dependencies and unknown task references are rejected with the same
//!   typed errors the builder produces.
//! * **`p2pgrid-workload/v1`** — a [`WorkloadSpec`]: a library of workflows plus *entries*
//!   binding each submitted instance to an arrival time (`submit_at_ms`, virtual milliseconds)
//!   and a home-node policy (`"auto"` round-robins over the scenario's stable home candidates;
//!   an integer pins an explicit node id).
//!
//! The checked-in artifacts under `workloads/` (Montage, CyberShake, Epigenomics) use the
//! workload format; `examples/export_workloads.rs` regenerates them from
//! [`shapes`](crate::generator::shapes), and `repro --check-workloads` verifies parse +
//! round-trip in CI.
//!
//! Export edge order is canonical (grouped by source task in id order); importing a document,
//! exporting it and re-importing is a fixpoint, and for workflows whose builder inserted edges
//! in that same order (all the library shapes) `import(export(w)) == w` exactly.

use crate::dag::{Task, TaskId, Workflow, WorkflowBuilder, WorkflowError};
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Format tag of a single-workflow document.
pub const WORKFLOW_FORMAT: &str = "p2pgrid-workflow/v1";
/// Format tag of a workload (workflow library + arrival entries) document.
pub const WORKLOAD_FORMAT: &str = "p2pgrid-workload/v1";

/// Errors raised while importing, exporting or validating workload documents.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON (carries the parser's line/column).
    Parse(json::ParseError),
    /// Reading or writing the file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// The JSON is well-formed but does not match the schema.
    Schema {
        /// Dotted path of the offending field (e.g. `workflows[2].tasks[0].load_mi`).
        at: String,
        /// What was expected.
        message: String,
    },
    /// Two tasks in one workflow share a name.
    DuplicateTaskName {
        /// The workflow's name.
        workflow: String,
        /// The repeated task name.
        task: String,
    },
    /// An edge references a task name that does not exist in the workflow.
    UnknownTaskName {
        /// The workflow's name.
        workflow: String,
        /// The unresolved task name.
        task: String,
    },
    /// Two workflows in one workload share a name.
    DuplicateWorkflowName(String),
    /// An entry references a workflow name that does not exist in the library.
    UnknownWorkflowName(String),
    /// DAG validation failed (cycle, duplicate edge, self-dependency, bad parameter, ...).
    Workflow {
        /// The workflow's name.
        workflow: String,
        /// The underlying builder error.
        error: WorkflowError,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Io { path, message } => write!(f, "{path}: {message}"),
            SpecError::Schema { at, message } => write!(f, "at `{at}`: {message}"),
            SpecError::DuplicateTaskName { workflow, task } => {
                write!(f, "workflow `{workflow}`: duplicate task name `{task}`")
            }
            SpecError::UnknownTaskName { workflow, task } => {
                write!(
                    f,
                    "workflow `{workflow}`: edge references unknown task `{task}`"
                )
            }
            SpecError::DuplicateWorkflowName(n) => write!(f, "duplicate workflow name `{n}`"),
            SpecError::UnknownWorkflowName(n) => {
                write!(f, "entry references unknown workflow `{n}`")
            }
            SpecError::Workflow { workflow, error } => {
                write!(f, "workflow `{workflow}`: {error}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<json::ParseError> for SpecError {
    fn from(e: json::ParseError) -> Self {
        SpecError::Parse(e)
    }
}

/// One task of a serialized workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique (within the workflow) task name; edges reference tasks by name.
    pub name: String,
    /// Computational load in million instructions.
    pub load_mi: f64,
    /// Program-image size in megabits (the task's staged-in binary/output footprint).
    pub image_size_mb: f64,
    /// Optional priority (informational today; see [`Task::priority`]).
    pub priority: Option<i32>,
}

/// One dependency edge of a serialized workflow: `[from, to, data_mb]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Name of the precedent task.
    pub from: String,
    /// Name of the successor task.
    pub to: String,
    /// Data transferred along the edge, in megabits.
    pub data_mb: f64,
}

/// A serializable workflow DAG (`p2pgrid-workflow/v1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// The workflow's name (entries in a [`WorkloadSpec`] reference it).
    pub name: String,
    /// Tasks in id order.
    pub tasks: Vec<TaskSpec>,
    /// Dependency edges.
    pub edges: Vec<EdgeSpec>,
}

impl WorkflowSpec {
    /// Export a validated [`Workflow`] under the given name.
    ///
    /// Anonymous tasks get synthesized `t{index}` names (import then names them, so a workflow
    /// of fully named tasks — every library shape — round-trips exactly).  Edges are emitted
    /// grouped by source task in id order.
    pub fn from_workflow(name: impl Into<String>, workflow: &Workflow) -> Result<Self, SpecError> {
        let name = name.into();
        let task_name = |id: TaskId| -> String {
            workflow
                .task(id)
                .name
                .clone()
                .unwrap_or_else(|| format!("{id}"))
        };
        let mut seen = HashMap::new();
        let mut tasks = Vec::with_capacity(workflow.task_count());
        for id in workflow.task_ids() {
            let t = workflow.task(id);
            let n = task_name(id);
            if seen.insert(n.clone(), id).is_some() {
                return Err(SpecError::DuplicateTaskName {
                    workflow: name,
                    task: n,
                });
            }
            tasks.push(TaskSpec {
                name: n,
                load_mi: t.load_mi,
                image_size_mb: t.image_size_mb,
                priority: t.priority,
            });
        }
        let mut edges = Vec::with_capacity(workflow.edge_count());
        for from in workflow.task_ids() {
            for e in workflow.successors(from) {
                edges.push(EdgeSpec {
                    from: tasks[from.index()].name.clone(),
                    to: tasks[e.task.index()].name.clone(),
                    data_mb: e.data_mb,
                });
            }
        }
        Ok(WorkflowSpec { name, tasks, edges })
    }

    /// Validate and build the runtime [`Workflow`], funnelling through [`WorkflowBuilder`] so
    /// cycles, duplicate edges and invalid parameters are rejected with the builder's checks.
    pub fn build(&self) -> Result<Workflow, SpecError> {
        let mut ids: HashMap<&str, TaskId> = HashMap::with_capacity(self.tasks.len());
        let mut builder = WorkflowBuilder::new();
        for t in &self.tasks {
            let id = builder.add_task(Task {
                load_mi: t.load_mi,
                image_size_mb: t.image_size_mb,
                name: Some(t.name.clone()),
                priority: t.priority,
            });
            if ids.insert(t.name.as_str(), id).is_some() {
                return Err(SpecError::DuplicateTaskName {
                    workflow: self.name.clone(),
                    task: t.name.clone(),
                });
            }
        }
        for e in &self.edges {
            let resolve = |n: &str| {
                ids.get(n)
                    .copied()
                    .ok_or_else(|| SpecError::UnknownTaskName {
                        workflow: self.name.clone(),
                        task: n.to_string(),
                    })
            };
            builder.add_dependency(resolve(&e.from)?, resolve(&e.to)?, e.data_mb);
        }
        builder.build().map_err(|error| SpecError::Workflow {
            workflow: self.name.clone(),
            error,
        })
    }

    /// Render to a [`Value`] tree (with the `p2pgrid-workflow/v1` format tag).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("format", Value::from(WORKFLOW_FORMAT)),
            ("name", Value::from(self.name.as_str())),
            (
                "tasks",
                Value::Array(self.tasks.iter().map(task_to_json).collect()),
            ),
            (
                "edges",
                Value::Array(
                    self.edges
                        .iter()
                        .map(|e| {
                            Value::Array(vec![
                                Value::from(e.from.as_str()),
                                Value::from(e.to.as_str()),
                                Value::from(e.data_mb),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from a [`Value`] tree; `at` prefixes schema-error paths.
    fn from_json_at(v: &Value, at: &str) -> Result<Self, SpecError> {
        let obj = as_object(v, at)?;
        if let Some(fmtv) = get_opt(obj, "format") {
            let tag = as_str(fmtv, &field(at, "format"))?;
            if tag != WORKFLOW_FORMAT {
                return Err(SpecError::Schema {
                    at: field(at, "format"),
                    message: format!("expected format `{WORKFLOW_FORMAT}`, got `{tag}`"),
                });
            }
        }
        let name = as_str(get(obj, "name", at)?, &field(at, "name"))?.to_string();
        let tasks_at = field(at, "tasks");
        let tasks = as_array(get(obj, "tasks", at)?, &tasks_at)?
            .iter()
            .enumerate()
            .map(|(i, t)| task_from_json(t, &format!("{tasks_at}[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let edges_at = field(at, "edges");
        let edges = as_array(get(obj, "edges", at)?, &edges_at)?
            .iter()
            .enumerate()
            .map(|(i, e)| edge_from_json(e, &format!("{edges_at}[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WorkflowSpec { name, tasks, edges })
    }

    /// Parse a standalone `p2pgrid-workflow/v1` document.
    pub fn from_json(v: &Value) -> Result<Self, SpecError> {
        Self::from_json_at(v, "$")
    }

    /// Render as pretty-printed JSON text.
    pub fn to_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// Parse from JSON text: `text.parse::<WorkflowSpec>()`.
impl std::str::FromStr for WorkflowSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        Self::from_json(&json::parse(s)?)
    }
}

/// Where a submitted workflow instance lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HomePolicy {
    /// Round-robin over the scenario's stable home candidates (deterministic, in entry order).
    Auto,
    /// Pin to an explicit node id (must be a stable node of the scenario).
    Node(usize),
}

/// One submitted workflow instance: which DAG, when, and where it is homed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEntry {
    /// Name of a workflow in the workload's library.
    pub workflow: String,
    /// Arrival (submission) time in virtual milliseconds.
    pub submit_at_ms: u64,
    /// Home-node policy.
    pub home: HomePolicy,
}

/// A serializable workload (`p2pgrid-workload/v1`): a workflow library plus arrival entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The workload's name (used in reports and file names).
    pub name: String,
    /// The workflow library (names must be unique).
    pub workflows: Vec<WorkflowSpec>,
    /// Submitted instances in submission order.
    pub entries: Vec<WorkloadEntry>,
}

/// One resolved workload entry: the validated DAG plus its binding.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedEntry {
    /// The validated runtime workflow.
    pub workflow: Workflow,
    /// Arrival (submission) time in virtual milliseconds.
    pub submit_at_ms: u64,
    /// Home-node policy.
    pub home: HomePolicy,
}

impl WorkloadSpec {
    /// A workload submitting each given workflow once, at time zero, with auto home placement.
    pub fn batch(name: impl Into<String>, workflows: Vec<WorkflowSpec>) -> Self {
        let entries = workflows
            .iter()
            .map(|w| WorkloadEntry {
                workflow: w.name.clone(),
                submit_at_ms: 0,
                home: HomePolicy::Auto,
            })
            .collect();
        WorkloadSpec {
            name: name.into(),
            workflows,
            entries,
        }
    }

    /// Validate every workflow in the library and resolve every entry to its DAG.
    ///
    /// Rejects duplicate workflow names, entries referencing unknown names, and any DAG-level
    /// problem ([`WorkflowSpec::build`]).  Home-policy node ids are range-checked later by
    /// `Scenario::build`, which knows the grid size.
    pub fn resolve(&self) -> Result<Vec<ResolvedEntry>, SpecError> {
        let mut built: HashMap<&str, Workflow> = HashMap::with_capacity(self.workflows.len());
        for w in &self.workflows {
            if built.insert(w.name.as_str(), w.build()?).is_some() {
                return Err(SpecError::DuplicateWorkflowName(w.name.clone()));
            }
        }
        self.entries
            .iter()
            .map(|e| {
                let workflow = built
                    .get(e.workflow.as_str())
                    .cloned()
                    .ok_or_else(|| SpecError::UnknownWorkflowName(e.workflow.clone()))?;
                Ok(ResolvedEntry {
                    workflow,
                    submit_at_ms: e.submit_at_ms,
                    home: e.home,
                })
            })
            .collect()
    }

    /// Render to a [`Value`] tree (with the `p2pgrid-workload/v1` format tag).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("format", Value::from(WORKLOAD_FORMAT)),
            ("name", Value::from(self.name.as_str())),
            (
                "workflows",
                Value::Array(
                    self.workflows
                        .iter()
                        .map(|w| {
                            // Inner workflows omit the redundant format tag.
                            match w.to_json() {
                                Value::Object(fields) => Value::Object(
                                    fields.into_iter().filter(|(k, _)| k != "format").collect(),
                                ),
                                other => other,
                            }
                        })
                        .collect(),
                ),
            ),
            (
                "entries",
                Value::Array(
                    self.entries
                        .iter()
                        .map(|e| {
                            Value::object([
                                ("workflow", Value::from(e.workflow.as_str())),
                                ("submit_at_ms", Value::from(e.submit_at_ms)),
                                (
                                    "home",
                                    match e.home {
                                        HomePolicy::Auto => Value::from("auto"),
                                        HomePolicy::Node(i) => Value::from(i),
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from a [`Value`] tree.
    ///
    /// Accepts either format: a `p2pgrid-workload/v1` document, or a bare
    /// `p2pgrid-workflow/v1` document, which is wrapped as a single-entry workload
    /// (submitted at time zero, auto home).
    pub fn from_json(v: &Value) -> Result<Self, SpecError> {
        let obj = as_object(v, "$")?;
        let tag = match get_opt(obj, "format") {
            Some(t) => as_str(t, "$.format")?,
            None => {
                return Err(SpecError::Schema {
                    at: "$.format".into(),
                    message: format!(
                        "missing format tag (expected `{WORKLOAD_FORMAT}` or `{WORKFLOW_FORMAT}`)"
                    ),
                })
            }
        };
        if tag == WORKFLOW_FORMAT {
            let wf = WorkflowSpec::from_json(v)?;
            return Ok(WorkloadSpec::batch(wf.name.clone(), vec![wf]));
        }
        if tag != WORKLOAD_FORMAT {
            return Err(SpecError::Schema {
                at: "$.format".into(),
                message: format!(
                    "expected format `{WORKLOAD_FORMAT}` or `{WORKFLOW_FORMAT}`, got `{tag}`"
                ),
            });
        }
        let name = as_str(get(obj, "name", "$")?, "$.name")?.to_string();
        let workflows = as_array(get(obj, "workflows", "$")?, "$.workflows")?
            .iter()
            .enumerate()
            .map(|(i, w)| WorkflowSpec::from_json_at(w, &format!("$.workflows[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let entries = as_array(get(obj, "entries", "$")?, "$.entries")?
            .iter()
            .enumerate()
            .map(|(i, e)| entry_from_json(e, &format!("$.entries[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WorkloadSpec {
            name,
            workflows,
            entries,
        })
    }

    /// Render as pretty-printed JSON text (with a trailing newline, as checked-in artifacts).
    pub fn to_string_pretty(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// Load and parse a workload file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        text.parse()
    }

    /// Write as pretty-printed JSON to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SpecError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_string_pretty()).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Total number of submitted workflow instances.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The latest `submit_at_ms` over all entries (zero for an empty workload).
    pub fn last_arrival_ms(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.submit_at_ms)
            .max()
            .unwrap_or(0)
    }
}

/// Parse from JSON text (either document format — see [`WorkloadSpec::from_json`]):
/// `text.parse::<WorkloadSpec>()`.
impl std::str::FromStr for WorkloadSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        Self::from_json(&json::parse(s)?)
    }
}

fn task_to_json(t: &TaskSpec) -> Value {
    let mut fields = vec![
        ("name", Value::from(t.name.as_str())),
        ("load_mi", Value::from(t.load_mi)),
        ("image_size_mb", Value::from(t.image_size_mb)),
    ];
    if let Some(p) = t.priority {
        fields.push(("priority", Value::Number(p as f64)));
    }
    Value::object(fields)
}

fn task_from_json(v: &Value, at: &str) -> Result<TaskSpec, SpecError> {
    let obj = as_object(v, at)?;
    let priority = match get_opt(obj, "priority") {
        None | Some(Value::Null) => None,
        Some(p) => Some(as_i32(p, &field(at, "priority"))?),
    };
    Ok(TaskSpec {
        name: as_str(get(obj, "name", at)?, &field(at, "name"))?.to_string(),
        load_mi: as_f64(get(obj, "load_mi", at)?, &field(at, "load_mi"))?,
        image_size_mb: as_f64(get(obj, "image_size_mb", at)?, &field(at, "image_size_mb"))?,
        priority,
    })
}

fn edge_from_json(v: &Value, at: &str) -> Result<EdgeSpec, SpecError> {
    let arr = as_array(v, at)?;
    if arr.len() != 3 {
        return Err(SpecError::Schema {
            at: at.to_string(),
            message: format!(
                "expected a [from, to, data_mb] triple, got {} elements",
                arr.len()
            ),
        });
    }
    Ok(EdgeSpec {
        from: as_str(&arr[0], &format!("{at}[0]"))?.to_string(),
        to: as_str(&arr[1], &format!("{at}[1]"))?.to_string(),
        data_mb: as_f64(&arr[2], &format!("{at}[2]"))?,
    })
}

fn entry_from_json(v: &Value, at: &str) -> Result<WorkloadEntry, SpecError> {
    let obj = as_object(v, at)?;
    let home_at = field(at, "home");
    let home = match get(obj, "home", at)? {
        Value::String(s) if s == "auto" => HomePolicy::Auto,
        Value::Number(_) => HomePolicy::Node(as_usize(get(obj, "home", at)?, &home_at)?),
        other => {
            return Err(SpecError::Schema {
                at: home_at,
                message: format!("expected \"auto\" or a node id, got {other}"),
            })
        }
    };
    let submit_at_ms = match get_opt(obj, "submit_at_ms") {
        None => 0,
        Some(v) => as_u64(v, &field(at, "submit_at_ms"))?,
    };
    Ok(WorkloadEntry {
        workflow: as_str(get(obj, "workflow", at)?, &field(at, "workflow"))?.to_string(),
        submit_at_ms,
        home,
    })
}

// --- tiny schema helpers -------------------------------------------------------------------

fn field(at: &str, name: &str) -> String {
    format!("{at}.{name}")
}

fn schema_err<T>(at: &str, message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError::Schema {
        at: at.to_string(),
        message: message.into(),
    })
}

fn as_object<'v>(v: &'v Value, at: &str) -> Result<&'v [(String, Value)], SpecError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => schema_err(at, format!("expected an object, got {other}")),
    }
}

fn as_array<'v>(v: &'v Value, at: &str) -> Result<&'v [Value], SpecError> {
    match v {
        Value::Array(items) => Ok(items),
        other => schema_err(at, format!("expected an array, got {other}")),
    }
}

fn as_str<'v>(v: &'v Value, at: &str) -> Result<&'v str, SpecError> {
    match v {
        Value::String(s) => Ok(s),
        other => schema_err(at, format!("expected a string, got {other}")),
    }
}

fn as_f64(v: &Value, at: &str) -> Result<f64, SpecError> {
    match v {
        Value::Number(n) => Ok(*n),
        other => schema_err(at, format!("expected a number, got {other}")),
    }
}

fn as_u64(v: &Value, at: &str) -> Result<u64, SpecError> {
    let n = as_f64(v, at)?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return schema_err(at, format!("expected a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

fn as_usize(v: &Value, at: &str) -> Result<usize, SpecError> {
    let n = as_u64(v, at)?;
    usize::try_from(n).map_err(|_| SpecError::Schema {
        at: at.to_string(),
        message: format!("node id {n} out of range"),
    })
}

fn as_i32(v: &Value, at: &str) -> Result<i32, SpecError> {
    let n = as_f64(v, at)?;
    if n.fract() != 0.0 || n < i32::MIN as f64 || n > i32::MAX as f64 {
        return schema_err(at, format!("expected a 32-bit integer, got {n}"));
    }
    Ok(n as i32)
}

fn get<'v>(obj: &'v [(String, Value)], key: &str, at: &str) -> Result<&'v Value, SpecError> {
    get_opt(obj, key).ok_or_else(|| SpecError::Schema {
        at: field(at, key),
        message: "missing required field".into(),
    })
}

fn get_opt<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::shapes;
    use proptest::prelude::*;
    use std::str::FromStr;

    #[test]
    fn export_import_is_byte_identical_for_named_shapes() {
        for (name, w) in [
            ("montage", shapes::montage_like(4, 2000.0, 400.0)),
            ("cybershake", shapes::cybershake_like(2, 3, 1500.0, 2000.0)),
            ("epigenomics", shapes::epigenomics_like(3, 3000.0, 300.0)),
            ("chain", shapes::chain(5, 100.0, 10.0)),
            ("fork-join", shapes::fork_join(4, 800.0, 120.0)),
        ] {
            let spec = WorkflowSpec::from_workflow(name, &w).unwrap();
            let rebuilt = spec.build().unwrap();
            assert_eq!(rebuilt, w, "{name} must round-trip exactly");
            // Text round-trip is a fixpoint too.
            let text = spec.to_string_pretty();
            let reparsed = WorkflowSpec::from_str(&text).unwrap();
            assert_eq!(reparsed, spec);
            assert_eq!(reparsed.to_string_pretty(), text);
        }
    }

    #[test]
    fn workload_document_round_trips_with_entries() {
        let montage =
            WorkflowSpec::from_workflow("m", &shapes::montage_like(3, 1000.0, 200.0)).unwrap();
        let spec = WorkloadSpec {
            name: "demo".into(),
            workflows: vec![montage],
            entries: vec![
                WorkloadEntry {
                    workflow: "m".into(),
                    submit_at_ms: 0,
                    home: HomePolicy::Auto,
                },
                WorkloadEntry {
                    workflow: "m".into(),
                    submit_at_ms: 1_800_000,
                    home: HomePolicy::Node(7),
                },
            ],
        };
        let text = spec.to_string_pretty();
        let reparsed = WorkloadSpec::from_str(&text).unwrap();
        assert_eq!(reparsed, spec);
        let resolved = reparsed.resolve().unwrap();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].submit_at_ms, 0);
        assert_eq!(resolved[1].home, HomePolicy::Node(7));
        assert_eq!(resolved[0].workflow, resolved[1].workflow);
        assert_eq!(spec.last_arrival_ms(), 1_800_000);
    }

    #[test]
    fn bare_workflow_documents_wrap_into_single_entry_workloads() {
        let spec = WorkflowSpec::from_workflow("solo", &shapes::diamond(10.0, 100.0, 5.0)).unwrap();
        let wl = WorkloadSpec::from_str(&spec.to_string_pretty()).unwrap();
        assert_eq!(wl.entry_count(), 1);
        assert_eq!(wl.entries[0].workflow, "solo");
        assert_eq!(wl.entries[0].submit_at_ms, 0);
        assert_eq!(wl.entries[0].home, HomePolicy::Auto);
    }

    #[test]
    fn priority_and_anonymous_names_survive_the_round_trip() {
        let mut spec = WorkflowSpec::from_workflow("p", &shapes::chain(2, 50.0, 5.0)).unwrap();
        spec.tasks[0].priority = Some(-3);
        let w = spec.build().unwrap();
        assert_eq!(w.task(TaskId(0)).priority, Some(-3));
        let back = WorkflowSpec::from_workflow("p", &w).unwrap();
        assert_eq!(back, spec);

        // Anonymous tasks get synthesized names on export.
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(10.0, 1.0);
        let c = b.add_simple_task(20.0, 1.0);
        b.add_dependency(a, c, 5.0);
        let anon = b.build().unwrap();
        let exported = WorkflowSpec::from_workflow("anon", &anon).unwrap();
        assert_eq!(exported.tasks[0].name, "t0");
        assert_eq!(exported.tasks[1].name, "t1");
        exported.build().unwrap();
    }

    #[test]
    fn schema_errors_name_the_offending_field() {
        let err =
            WorkloadSpec::from_str("{\"format\":\"p2pgrid-workload/v1\",\"name\":3}").unwrap_err();
        assert!(
            matches!(&err, SpecError::Schema { at, .. } if at == "$.name"),
            "{err}"
        );

        let err = WorkloadSpec::from_str("{\"name\":\"x\"}").unwrap_err();
        assert!(
            matches!(&err, SpecError::Schema { at, .. } if at == "$.format"),
            "{err}"
        );

        let err = WorkloadSpec::from_str("not json").unwrap_err();
        assert!(matches!(err, SpecError::Parse(_)));

        let doc = "{\"format\":\"p2pgrid-workload/v1\",\"name\":\"x\",\"workflows\":[{\"name\":\"w\",\"tasks\":[{\"name\":\"a\",\"load_mi\":1}],\"edges\":[]}],\"entries\":[]}";
        let err = WorkloadSpec::from_str(doc).unwrap_err();
        assert!(
            matches!(&err, SpecError::Schema { at, .. } if at == "$.workflows[0].tasks[0].image_size_mb"),
            "{err}"
        );
    }

    #[test]
    fn validation_rejects_structural_errors() {
        let task = |n: &str| TaskSpec {
            name: n.into(),
            load_mi: 10.0,
            image_size_mb: 1.0,
            priority: None,
        };
        let edge = |f: &str, t: &str| EdgeSpec {
            from: f.into(),
            to: t.into(),
            data_mb: 1.0,
        };

        // Cycle.
        let cyclic = WorkflowSpec {
            name: "c".into(),
            tasks: vec![task("a"), task("b")],
            edges: vec![edge("a", "b"), edge("b", "a")],
        };
        assert!(matches!(
            cyclic.build().unwrap_err(),
            SpecError::Workflow {
                error: WorkflowError::CyclicDependency,
                ..
            }
        ));

        // Unknown task name in an edge.
        let unknown = WorkflowSpec {
            name: "u".into(),
            tasks: vec![task("a")],
            edges: vec![edge("a", "ghost")],
        };
        assert!(matches!(
            unknown.build().unwrap_err(),
            SpecError::UnknownTaskName { task, .. } if task == "ghost"
        ));

        // Duplicate edge.
        let dup = WorkflowSpec {
            name: "d".into(),
            tasks: vec![task("a"), task("b")],
            edges: vec![edge("a", "b"), edge("a", "b")],
        };
        assert!(matches!(
            dup.build().unwrap_err(),
            SpecError::Workflow {
                error: WorkflowError::DuplicateEdge(_, _),
                ..
            }
        ));

        // Duplicate task name.
        let dup_task = WorkflowSpec {
            name: "t".into(),
            tasks: vec![task("a"), task("a")],
            edges: vec![],
        };
        assert!(matches!(
            dup_task.build().unwrap_err(),
            SpecError::DuplicateTaskName { .. }
        ));

        // Workload-level: duplicate workflow names and dangling entry references.
        let wf = WorkflowSpec {
            name: "w".into(),
            tasks: vec![task("a")],
            edges: vec![],
        };
        let dup_wl = WorkloadSpec {
            name: "x".into(),
            workflows: vec![wf.clone(), wf.clone()],
            entries: vec![],
        };
        assert!(matches!(
            dup_wl.resolve().unwrap_err(),
            SpecError::DuplicateWorkflowName(_)
        ));
        let dangling = WorkloadSpec {
            name: "x".into(),
            workflows: vec![wf],
            entries: vec![WorkloadEntry {
                workflow: "nope".into(),
                submit_at_ms: 0,
                home: HomePolicy::Auto,
            }],
        };
        assert!(matches!(
            dangling.resolve().unwrap_err(),
            SpecError::UnknownWorkflowName(_)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Randomly corrupted DAG specs — a back edge closing a cycle, a duplicated edge, or an
        /// edge to a nonexistent task name — are always rejected by import validation, and the
        /// uncorrupted spec always builds.
        #[test]
        fn prop_import_validation_rejects_corrupted_dags(
            n in 3usize..12,
            corruption in 0u8..3,
            pick in 0u64..1_000,
        ) {
            // A chain t0 -> t1 -> ... -> t{n-1}, then one corruption.
            let tasks: Vec<TaskSpec> = (0..n)
                .map(|i| TaskSpec {
                    name: format!("t{i}"),
                    load_mi: 10.0 + i as f64,
                    image_size_mb: 1.0,
                    priority: None,
                })
                .collect();
            let mut edges: Vec<EdgeSpec> = (0..n - 1)
                .map(|i| EdgeSpec {
                    from: format!("t{i}"),
                    to: format!("t{}", i + 1),
                    data_mb: 1.0,
                })
                .collect();
            let clean = WorkflowSpec { name: "prop".into(), tasks, edges: edges.clone() };
            prop_assert!(clean.build().is_ok());

            match corruption {
                0 => {
                    // Close a cycle with a back edge j -> i, i <= j.
                    let i = (pick as usize) % (n - 1);
                    let j = i + 1 + (pick as usize / n) % (n - 1 - i);
                    edges.push(EdgeSpec {
                        from: format!("t{j}"),
                        to: format!("t{i}"),
                        data_mb: 1.0,
                    });
                }
                1 => {
                    // Duplicate an existing edge.
                    let e = edges[(pick as usize) % edges.len()].clone();
                    edges.push(e);
                }
                _ => {
                    // Reference a task name that does not exist.
                    edges.push(EdgeSpec {
                        from: format!("t{}", (pick as usize) % n),
                        to: format!("ghost{pick}"),
                        data_mb: 1.0,
                    });
                }
            }
            let corrupted = WorkflowSpec { name: "prop".into(), tasks: clean.tasks.clone(), edges };
            let err = corrupted.build();
            prop_assert!(err.is_err(), "corruption {corruption} must be rejected");
            match corruption {
                0 => prop_assert!(matches!(
                    err.unwrap_err(),
                    SpecError::Workflow { error: WorkflowError::CyclicDependency, .. }
                        | SpecError::Workflow { error: WorkflowError::SelfDependency(_), .. }
                )),
                1 => prop_assert!(matches!(
                    err.unwrap_err(),
                    SpecError::Workflow { error: WorkflowError::DuplicateEdge(_, _), .. }
                )),
                _ => prop_assert!(matches!(err.unwrap_err(), SpecError::UnknownTaskName { .. })),
            }
        }
    }
}
