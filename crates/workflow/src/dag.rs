//! The workflow DAG data structure.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task *within one workflow* (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task's index into the workflow's task vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single workflow task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Computational load in million instructions (Table I: 100–10 000 MI).
    pub load_mi: f64,
    /// Size of the program image that must be migrated to the execution node, in megabits
    /// (Table I: 10–100 Mb).
    pub image_size_mb: f64,
    /// Optional human-readable label (used by examples and the Fig. 3 worked example).
    pub name: Option<String>,
    /// Optional priority carried by the on-disk workload format (`crates/workflow/src/spec.rs`).
    /// The paper's schedulers order tasks by RPM/makespan keys, so this field is informational
    /// today; it round-trips through import/export for future priority-aware substrates.
    pub priority: Option<i32>,
}

impl Task {
    /// Create a task with the given load and image size.
    pub fn new(load_mi: f64, image_size_mb: f64) -> Self {
        Task {
            load_mi,
            image_size_mb,
            name: None,
            priority: None,
        }
    }

    /// Create a named task.
    pub fn named(name: impl Into<String>, load_mi: f64, image_size_mb: f64) -> Self {
        Task {
            load_mi,
            image_size_mb,
            name: Some(name.into()),
            priority: None,
        }
    }

    /// A zero-cost virtual task used to normalise multi-entry / multi-exit workflows.
    pub fn virtual_task(name: &str) -> Self {
        Task {
            load_mi: 0.0,
            image_size_mb: 0.0,
            name: Some(name.to_string()),
            priority: None,
        }
    }

    /// True for zero-cost virtual entry/exit tasks.
    pub fn is_virtual(&self) -> bool {
        self.load_mi == 0.0 && self.image_size_mb == 0.0
    }
}

/// A dependency edge annotated with the amount of data (Mb) the successor must receive from the
/// precedent before it can start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataEdge {
    /// The other endpoint.
    pub task: TaskId,
    /// Payload size in megabits.
    pub data_mb: f64,
}

/// Errors detected while building a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The dependency graph contains a cycle.
    CyclicDependency,
    /// The workflow has no tasks.
    Empty,
    /// An edge references a task id that was never added.
    UnknownTask(TaskId),
    /// The same dependency was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// An edge connects a task to itself.
    SelfDependency(TaskId),
    /// A task parameter is invalid (negative load, negative data size, ...).
    InvalidParameter(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::CyclicDependency => write!(f, "workflow contains a dependency cycle"),
            WorkflowError::Empty => write!(f, "workflow has no tasks"),
            WorkflowError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            WorkflowError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            WorkflowError::SelfDependency(t) => write!(f, "task {t} depends on itself"),
            WorkflowError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Builder for [`Workflow`].
#[derive(Debug, Clone, Default)]
pub struct WorkflowBuilder {
    tasks: Vec<Task>,
    edges: Vec<(TaskId, TaskId, f64)>,
}

impl WorkflowBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task and return its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Convenience: add an anonymous task with the given load and image size.
    pub fn add_simple_task(&mut self, load_mi: f64, image_size_mb: f64) -> TaskId {
        self.add_task(Task::new(load_mi, image_size_mb))
    }

    /// Declare that `successor` depends on `precedent` and must receive `data_mb` megabits of
    /// output from it.
    pub fn add_dependency(&mut self, precedent: TaskId, successor: TaskId, data_mb: f64) {
        self.edges.push((precedent, successor, data_mb));
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Validate, normalise and freeze the workflow.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        Workflow::from_parts(self.tasks, self.edges)
    }
}

/// An immutable, validated, normalised workflow DAG.
///
/// After construction the workflow always has exactly one entry task and one exit task; if the
/// user-supplied DAG had several, zero-cost virtual tasks are prepended/appended, exactly as
/// Section II.A of the paper prescribes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    tasks: Vec<Task>,
    succs: Vec<Vec<DataEdge>>,
    preds: Vec<Vec<DataEdge>>,
    entry: TaskId,
    exit: TaskId,
    topo_order: Vec<TaskId>,
}

impl Workflow {
    fn from_parts(
        mut tasks: Vec<Task>,
        mut edges: Vec<(TaskId, TaskId, f64)>,
    ) -> Result<Self, WorkflowError> {
        if tasks.is_empty() {
            return Err(WorkflowError::Empty);
        }
        for t in &tasks {
            if t.load_mi < 0.0
                || t.load_mi.is_nan()
                || t.image_size_mb < 0.0
                || t.image_size_mb.is_nan()
            {
                return Err(WorkflowError::InvalidParameter(format!(
                    "task load/image must be non-negative, got load={} image={}",
                    t.load_mi, t.image_size_mb
                )));
            }
        }
        let n0 = tasks.len() as u32;
        let mut seen = std::collections::HashSet::new();
        for &(a, b, d) in &edges {
            if a.0 >= n0 {
                return Err(WorkflowError::UnknownTask(a));
            }
            if b.0 >= n0 {
                return Err(WorkflowError::UnknownTask(b));
            }
            if a == b {
                return Err(WorkflowError::SelfDependency(a));
            }
            if d < 0.0 || d.is_nan() {
                return Err(WorkflowError::InvalidParameter(format!(
                    "edge data size must be non-negative, got {d}"
                )));
            }
            if !seen.insert((a, b)) {
                return Err(WorkflowError::DuplicateEdge(a, b));
            }
        }

        // Normalise: find entry tasks (no precedent) and exit tasks (no successor) of the raw
        // graph; add zero-cost virtual tasks if there is more than one of either.
        let n = tasks.len();
        let mut has_pred = vec![false; n];
        let mut has_succ = vec![false; n];
        for &(a, b, _) in &edges {
            has_succ[a.index()] = true;
            has_pred[b.index()] = true;
        }
        let entries: Vec<TaskId> = (0..n)
            .filter(|&i| !has_pred[i])
            .map(|i| TaskId(i as u32))
            .collect();
        let exits: Vec<TaskId> = (0..n)
            .filter(|&i| !has_succ[i])
            .map(|i| TaskId(i as u32))
            .collect();
        if entries.is_empty() || exits.is_empty() {
            // Every DAG has at least one source and one sink; none means a cycle covers
            // everything.
            return Err(WorkflowError::CyclicDependency);
        }
        let entry = if entries.len() == 1 {
            entries[0]
        } else {
            let id = TaskId(tasks.len() as u32);
            tasks.push(Task::virtual_task("__entry"));
            for &e in &entries {
                edges.push((id, e, 0.0));
            }
            id
        };
        let exit = if exits.len() == 1 {
            exits[0]
        } else {
            let id = TaskId(tasks.len() as u32);
            tasks.push(Task::virtual_task("__exit"));
            for &x in &exits {
                edges.push((x, id, 0.0));
            }
            id
        };

        let n = tasks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b, d) in &edges {
            succs[a.index()].push(DataEdge {
                task: b,
                data_mb: d,
            });
            preds[b.index()].push(DataEdge {
                task: a,
                data_mb: d,
            });
        }

        // Kahn topological sort; detects residual cycles.
        let mut indeg: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let mut queue: std::collections::VecDeque<TaskId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| TaskId(i as u32))
            .collect();
        let mut topo_order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            topo_order.push(t);
            for e in &succs[t.index()] {
                indeg[e.task.index()] -= 1;
                if indeg[e.task.index()] == 0 {
                    queue.push_back(e.task);
                }
            }
        }
        if topo_order.len() != n {
            return Err(WorkflowError::CyclicDependency);
        }

        Ok(Workflow {
            tasks,
            succs,
            preds,
            entry,
            exit,
            topo_order,
        })
    }

    /// Number of tasks, including any virtual entry/exit tasks added during normalisation.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(|s| s.len()).sum()
    }

    /// The task with the given id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All task ids in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// The unique entry task.
    pub fn entry(&self) -> TaskId {
        self.entry
    }

    /// The unique exit task.
    pub fn exit(&self) -> TaskId {
        self.exit
    }

    /// Successors of `t` (`Suc(t)` in the paper) with their edge data sizes.
    pub fn successors(&self, t: TaskId) -> &[DataEdge] {
        &self.succs[t.index()]
    }

    /// Precedents of `t` (`Pre(t)` in the paper) with their edge data sizes.
    pub fn precedents(&self, t: TaskId) -> &[DataEdge] {
        &self.preds[t.index()]
    }

    /// A topological order of all tasks (entry first, exit last).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo_order
    }

    /// Total computational load of the workflow in MI.
    pub fn total_load_mi(&self) -> f64 {
        self.tasks.iter().map(|t| t.load_mi).sum()
    }

    /// Total data volume carried on all edges, in Mb.
    pub fn total_data_mb(&self) -> f64 {
        self.succs
            .iter()
            .flat_map(|s| s.iter())
            .map(|e| e.data_mb)
            .sum()
    }

    /// Communication-to-computation ratio under the given average capacity (MIPS) and average
    /// bandwidth (Mb/s): mean edge transfer time over mean task execution time.
    ///
    /// This is the CCR knob varied in Fig. 9 / Fig. 10.
    pub fn ccr(&self, avg_capacity_mips: f64, avg_bandwidth_mbps: f64) -> f64 {
        let n_edges = self.edge_count();
        let real_tasks: Vec<&Task> = self.tasks.iter().filter(|t| !t.is_virtual()).collect();
        if n_edges == 0 || real_tasks.is_empty() {
            return 0.0;
        }
        let mean_comm = self.total_data_mb() / n_edges as f64 / avg_bandwidth_mbps;
        let mean_comp = real_tasks.iter().map(|t| t.load_mi).sum::<f64>()
            / real_tasks.len() as f64
            / avg_capacity_mips;
        if mean_comp == 0.0 {
            0.0
        } else {
            mean_comm / mean_comp
        }
    }

    /// Maximum fan-out degree over all tasks.
    pub fn max_fanout(&self) -> usize {
        self.succs.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Workflow {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(100.0, 10.0);
        let t_b = b.add_simple_task(200.0, 10.0);
        let c = b.add_simple_task(300.0, 10.0);
        let d = b.add_simple_task(400.0, 10.0);
        b.add_dependency(a, t_b, 50.0);
        b.add_dependency(a, c, 60.0);
        b.add_dependency(t_b, d, 70.0);
        b.add_dependency(c, d, 80.0);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_reports_structure() {
        let w = diamond();
        assert_eq!(w.task_count(), 4);
        assert_eq!(w.edge_count(), 4);
        assert_eq!(w.entry(), TaskId(0));
        assert_eq!(w.exit(), TaskId(3));
        assert_eq!(w.successors(TaskId(0)).len(), 2);
        assert_eq!(w.precedents(TaskId(3)).len(), 2);
        assert_eq!(w.precedents(TaskId(0)).len(), 0);
        assert_eq!(w.total_load_mi(), 1000.0);
        assert_eq!(w.total_data_mb(), 260.0);
        assert_eq!(w.max_fanout(), 2);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let w = diamond();
        let order = w.topological_order();
        assert_eq!(order.len(), 4);
        let pos: std::collections::HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for t in w.task_ids() {
            for e in w.successors(t) {
                assert!(pos[&t] < pos[&e.task], "{t} must precede {}", e.task);
            }
        }
        assert_eq!(order[0], w.entry());
        assert_eq!(*order.last().unwrap(), w.exit());
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        let c = b.add_simple_task(1.0, 1.0);
        let d = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, c, 0.0);
        b.add_dependency(c, d, 0.0);
        b.add_dependency(d, a, 0.0);
        assert_eq!(b.build().unwrap_err(), WorkflowError::CyclicDependency);
    }

    #[test]
    fn two_node_cycle_is_rejected() {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        let c = b.add_simple_task(1.0, 1.0);
        // `a` is a valid entry, so entry detection succeeds but the Kahn pass must still fail.
        let d = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, c, 0.0);
        b.add_dependency(c, d, 0.0);
        b.add_dependency(d, c, 0.0);
        assert_eq!(b.build().unwrap_err(), WorkflowError::CyclicDependency);
    }

    #[test]
    fn empty_workflow_rejected() {
        assert_eq!(
            WorkflowBuilder::new().build().unwrap_err(),
            WorkflowError::Empty
        );
    }

    #[test]
    fn unknown_task_self_edge_and_duplicate_rejected() {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, TaskId(99), 0.0);
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::UnknownTask(TaskId(99))
        );

        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, a, 0.0);
        assert_eq!(b.build().unwrap_err(), WorkflowError::SelfDependency(a));

        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        let c = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, c, 1.0);
        b.add_dependency(a, c, 2.0);
        assert_eq!(b.build().unwrap_err(), WorkflowError::DuplicateEdge(a, c));
    }

    #[test]
    fn negative_parameters_rejected() {
        let mut b = WorkflowBuilder::new();
        b.add_simple_task(-5.0, 1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            WorkflowError::InvalidParameter(_)
        ));

        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        let c = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, c, -1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            WorkflowError::InvalidParameter(_)
        ));
    }

    #[test]
    fn multi_entry_multi_exit_is_normalised_with_virtual_tasks() {
        // Two independent chains: a1 -> a2 and b1 -> b2.
        let mut b = WorkflowBuilder::new();
        let a1 = b.add_simple_task(10.0, 1.0);
        let a2 = b.add_simple_task(20.0, 1.0);
        let b1 = b.add_simple_task(30.0, 1.0);
        let b2 = b.add_simple_task(40.0, 1.0);
        b.add_dependency(a1, a2, 5.0);
        b.add_dependency(b1, b2, 5.0);
        let w = b.build().unwrap();
        // 4 real + virtual entry + virtual exit.
        assert_eq!(w.task_count(), 6);
        assert!(w.task(w.entry()).is_virtual());
        assert!(w.task(w.exit()).is_virtual());
        assert_eq!(w.successors(w.entry()).len(), 2);
        assert_eq!(w.precedents(w.exit()).len(), 2);
        // Virtual tasks carry no load and virtual edges carry no data.
        assert_eq!(w.total_load_mi(), 100.0);
        assert_eq!(w.total_data_mb(), 10.0);
    }

    #[test]
    fn single_task_workflow_is_its_own_entry_and_exit() {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(42.0, 1.0);
        let w = b.build().unwrap();
        assert_eq!(w.entry(), a);
        assert_eq!(w.exit(), a);
        assert_eq!(w.task_count(), 1);
    }

    #[test]
    fn ccr_scales_with_data_size() {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1000.0, 1.0);
        let c = b.add_simple_task(1000.0, 1.0);
        b.add_dependency(a, c, 1000.0);
        let w = b.build().unwrap();
        // avg comp = 1000 MI / 1 MIPS = 1000 s; avg comm = 1000 Mb / 1 Mb/s = 1000 s.
        assert!((w.ccr(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Ten times the bandwidth → one tenth the CCR.
        assert!((w.ccr(1.0, 10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn named_and_virtual_tasks() {
        let t = Task::named("stage-in", 100.0, 10.0);
        assert_eq!(t.name.as_deref(), Some("stage-in"));
        assert!(!t.is_virtual());
        assert!(Task::virtual_task("__entry").is_virtual());
    }
}
