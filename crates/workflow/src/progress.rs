//! Runtime progress tracking of a workflow's execution.
//!
//! In the just-in-time model no task is scheduled until all of its precedents have finished.
//! [`ProgressTracker`] maintains, for one workflow instance, which tasks are finished, which
//! have already been dispatched to a resource node, and which are currently **schedule points**
//! — the paper's term for the tasks whose precedents are all complete but which have not yet
//! been dispatched (`spset(f)` in Eq. 8).

use crate::dag::{TaskId, Workflow};

/// Execution progress of a single workflow instance.
#[derive(Debug, Clone)]
pub struct ProgressTracker {
    n: usize,
    remaining_preds: Vec<usize>,
    finished: Vec<bool>,
    dispatched: Vec<bool>,
    finished_count: usize,
}

impl ProgressTracker {
    /// Create a tracker for a freshly submitted workflow: nothing finished, nothing dispatched,
    /// and only the entry task a schedule point.
    pub fn new(workflow: &Workflow) -> Self {
        let n = workflow.task_count();
        let remaining_preds = workflow
            .task_ids()
            .map(|t| workflow.precedents(t).len())
            .collect();
        ProgressTracker {
            n,
            remaining_preds,
            finished: vec![false; n],
            dispatched: vec![false; n],
            finished_count: 0,
        }
    }

    /// Number of tasks in the tracked workflow.
    pub fn task_count(&self) -> usize {
        self.n
    }

    /// True once every task has finished.
    pub fn is_complete(&self) -> bool {
        self.finished_count == self.n
    }

    /// Number of finished tasks.
    pub fn finished_count(&self) -> usize {
        self.finished_count
    }

    /// True if `t` has finished.
    pub fn is_finished(&self, t: TaskId) -> bool {
        self.finished[t.index()]
    }

    /// True if `t` has been dispatched to a resource node (and has not necessarily finished).
    pub fn is_dispatched(&self, t: TaskId) -> bool {
        self.dispatched[t.index()]
    }

    /// True if `t` is currently a schedule point: not dispatched, not finished, and all of its
    /// precedents are finished.
    pub fn is_schedule_point(&self, t: TaskId) -> bool {
        !self.dispatched[t.index()]
            && !self.finished[t.index()]
            && self.remaining_preds[t.index()] == 0
    }

    /// The current schedule-point set `spset(f)`, in task-id order.
    pub fn schedule_points(&self, workflow: &Workflow) -> Vec<TaskId> {
        workflow
            .task_ids()
            .filter(|&t| self.is_schedule_point(t))
            .collect()
    }

    /// Mark `t` as dispatched to a resource node.
    ///
    /// # Panics
    /// Panics if `t` is not currently a schedule point — dispatching a task whose precedents
    /// have not finished would violate the just-in-time model.
    pub fn mark_dispatched(&mut self, t: TaskId) {
        assert!(
            self.is_schedule_point(t),
            "task {t} is not a schedule point (dispatched twice or precedents unfinished)"
        );
        self.dispatched[t.index()] = true;
    }

    /// Undo a dispatch (used when a resource node churns away before executing the task and the
    /// home node re-schedules it).
    pub fn unmark_dispatched(&mut self, t: TaskId) {
        assert!(
            self.dispatched[t.index()] && !self.finished[t.index()],
            "task {t} cannot be un-dispatched"
        );
        self.dispatched[t.index()] = false;
    }

    /// Mark `t` as finished and return the tasks that *became* schedule points as a result.
    ///
    /// # Panics
    /// Panics if `t` already finished or if any precedent of `t` has not finished.
    pub fn mark_finished(&mut self, workflow: &Workflow, t: TaskId) -> Vec<TaskId> {
        assert!(!self.finished[t.index()], "task {t} finished twice");
        assert_eq!(
            self.remaining_preds[t.index()],
            0,
            "task {t} finished before its precedents"
        );
        self.finished[t.index()] = true;
        self.finished_count += 1;
        let mut newly_ready = Vec::new();
        for e in workflow.successors(t) {
            let s = e.task;
            self.remaining_preds[s.index()] -= 1;
            if self.remaining_preds[s.index()] == 0 && !self.dispatched[s.index()] {
                newly_ready.push(s);
            }
        }
        newly_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::generator::{WorkflowGenerator, WorkflowGeneratorConfig};
    use p2pgrid_sim::SimRng;
    use proptest::prelude::*;

    fn diamond() -> (Workflow, [TaskId; 4]) {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(1.0, 1.0);
        let t_b = b.add_simple_task(1.0, 1.0);
        let c = b.add_simple_task(1.0, 1.0);
        let d = b.add_simple_task(1.0, 1.0);
        b.add_dependency(a, t_b, 1.0);
        b.add_dependency(a, c, 1.0);
        b.add_dependency(t_b, d, 1.0);
        b.add_dependency(c, d, 1.0);
        (b.build().unwrap(), [a, t_b, c, d])
    }

    #[test]
    fn only_entry_is_initially_ready() {
        let (w, [a, ..]) = diamond();
        let p = ProgressTracker::new(&w);
        assert_eq!(p.schedule_points(&w), vec![a]);
        assert!(!p.is_complete());
        assert_eq!(p.finished_count(), 0);
    }

    #[test]
    fn finishing_entry_unlocks_both_branches() {
        let (w, [a, b, c, d]) = diamond();
        let mut p = ProgressTracker::new(&w);
        p.mark_dispatched(a);
        assert!(
            !p.is_schedule_point(a),
            "dispatched tasks are no longer schedule points"
        );
        let newly = p.mark_finished(&w, a);
        assert_eq!(newly, vec![b, c]);
        assert_eq!(p.schedule_points(&w), vec![b, c]);
        assert!(!p.is_schedule_point(d));
    }

    #[test]
    fn join_task_waits_for_all_precedents() {
        let (w, [a, b, c, d]) = diamond();
        let mut p = ProgressTracker::new(&w);
        p.mark_dispatched(a);
        p.mark_finished(&w, a);
        p.mark_dispatched(b);
        let newly = p.mark_finished(&w, b);
        assert!(newly.is_empty(), "d still waits for c");
        p.mark_dispatched(c);
        let newly = p.mark_finished(&w, c);
        assert_eq!(newly, vec![d]);
        p.mark_dispatched(d);
        p.mark_finished(&w, d);
        assert!(p.is_complete());
    }

    #[test]
    #[should_panic(expected = "not a schedule point")]
    fn cannot_dispatch_blocked_task() {
        let (w, [_, _, _, d]) = diamond();
        let mut p = ProgressTracker::new(&w);
        p.mark_dispatched(d);
    }

    #[test]
    #[should_panic(expected = "finished twice")]
    fn cannot_finish_twice() {
        let (w, [a, ..]) = diamond();
        let mut p = ProgressTracker::new(&w);
        p.mark_dispatched(a);
        p.mark_finished(&w, a);
        p.mark_finished(&w, a);
    }

    #[test]
    fn undispatch_restores_schedule_point() {
        let (w, [a, ..]) = diamond();
        let mut p = ProgressTracker::new(&w);
        p.mark_dispatched(a);
        assert!(!p.is_schedule_point(a));
        p.unmark_dispatched(a);
        assert!(p.is_schedule_point(a));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Executing any generated workflow by repeatedly dispatching+finishing an arbitrary
        /// schedule point always terminates with every task finished, and never exposes a task
        /// whose precedents are unfinished.
        #[test]
        fn prop_any_greedy_execution_completes(seed in 0u64..1000) {
            let mut rng = SimRng::seed_from_u64(seed);
            let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
            let w = gen.generate(&mut rng);
            let mut p = ProgressTracker::new(&w);
            let mut steps = 0usize;
            while !p.is_complete() {
                let sps = p.schedule_points(&w);
                prop_assert!(!sps.is_empty(), "deadlock: unfinished workflow with no schedule points");
                // Pick a pseudo-random schedule point to model out-of-order completion.
                let pick = sps[(seed as usize + steps) % sps.len()];
                for e in w.precedents(pick) {
                    prop_assert!(p.is_finished(e.task));
                }
                p.mark_dispatched(pick);
                p.mark_finished(&w, pick);
                steps += 1;
                prop_assert!(steps <= w.task_count());
            }
            prop_assert_eq!(p.finished_count(), w.task_count());
        }
    }
}
