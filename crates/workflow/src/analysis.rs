//! Static workflow analysis under system-wide average costs.
//!
//! The paper estimates every quantity that concerns *not-yet-scheduled* tasks (the "offspring"
//! of a schedule point) with the **system-wide average node capacity** and **average network
//! bandwidth**, both of which each peer learns through the aggregation gossip protocol:
//!
//! * expected execution time       `eet(t) = load(t) / avg_capacity`
//! * expected transmission time    `ett(e) = data(e) / avg_bandwidth`
//! * rest path makespan (RPM)      `RPM(t) = eet(t) + max over successors s of (ett(t→s) + RPM(s))`
//! * workflow expected finish time `eft(f) = RPM(entry)` — the length of the critical path
//!   (Eq. 1), which is also what the full-ahead SMF baseline sorts by.
//!
//! `RPM` is exactly HEFT's *upward rank* computed with averages, which is why the paper can
//! reuse the same recursion for both its own heuristic and the HEFT baseline.

use crate::dag::{TaskId, Workflow};
use serde::{Deserialize, Serialize};

/// The system-wide average costs used for estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpectedCosts {
    /// Average node capacity in MIPS.
    pub avg_capacity_mips: f64,
    /// Average effective bandwidth in Mb/s.
    pub avg_bandwidth_mbps: f64,
}

impl ExpectedCosts {
    /// Create a cost model, validating that both averages are positive.
    pub fn new(avg_capacity_mips: f64, avg_bandwidth_mbps: f64) -> Self {
        assert!(avg_capacity_mips > 0.0, "average capacity must be positive");
        assert!(
            avg_bandwidth_mbps > 0.0,
            "average bandwidth must be positive"
        );
        ExpectedCosts {
            avg_capacity_mips,
            avg_bandwidth_mbps,
        }
    }

    /// Expected execution time (seconds) of a task with the given load.
    pub fn eet_secs(&self, load_mi: f64) -> f64 {
        load_mi / self.avg_capacity_mips
    }

    /// Expected transmission time (seconds) of an edge carrying the given data volume.
    pub fn ett_secs(&self, data_mb: f64) -> f64 {
        data_mb / self.avg_bandwidth_mbps
    }
}

/// Precomputed per-task analysis of one workflow under an [`ExpectedCosts`] model.
#[derive(Debug, Clone)]
pub struct WorkflowAnalysis {
    costs: ExpectedCosts,
    /// `rpm[t]` = rest path makespan (upward rank) of task `t`, in seconds.
    rpm: Vec<f64>,
    /// `downward[t]` = longest path length from the entry up to (excluding) `t`, in seconds.
    downward: Vec<f64>,
    critical_path: Vec<TaskId>,
}

impl WorkflowAnalysis {
    /// Analyse `workflow` under the given average costs.
    pub fn new(workflow: &Workflow, costs: ExpectedCosts) -> Self {
        let n = workflow.task_count();
        let mut rpm = vec![0.0f64; n];
        // Walk the reverse topological order so successors are finished first; every edge is
        // visited exactly once, giving the O(edges) complexity claimed in Section III.E.
        for &t in workflow.topological_order().iter().rev() {
            let eet = costs.eet_secs(workflow.task(t).load_mi);
            let tail = workflow
                .successors(t)
                .iter()
                .map(|e| costs.ett_secs(e.data_mb) + rpm[e.task.index()])
                .fold(0.0f64, f64::max);
            rpm[t.index()] = eet + tail;
        }

        let mut downward = vec![0.0f64; n];
        for &t in workflow.topological_order() {
            let eet = costs.eet_secs(workflow.task(t).load_mi);
            for e in workflow.successors(t) {
                let cand = downward[t.index()] + eet + costs.ett_secs(e.data_mb);
                if cand > downward[e.task.index()] {
                    downward[e.task.index()] = cand;
                }
            }
        }

        // Extract one critical path by greedily following, from the entry, the successor that
        // preserves the total path length rpm[entry].
        let mut critical_path = Vec::new();
        let mut cur = workflow.entry();
        critical_path.push(cur);
        while cur != workflow.exit() {
            let next = workflow
                .successors(cur)
                .iter()
                .max_by(|a, b| {
                    let ka = costs.ett_secs(a.data_mb) + rpm[a.task.index()];
                    let kb = costs.ett_secs(b.data_mb) + rpm[b.task.index()];
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|e| e.task);
            match next {
                Some(t) => {
                    critical_path.push(t);
                    cur = t;
                }
                None => break,
            }
        }

        WorkflowAnalysis {
            costs,
            rpm,
            downward,
            critical_path,
        }
    }

    /// The cost model used for this analysis.
    pub fn costs(&self) -> ExpectedCosts {
        self.costs
    }

    /// Rest path makespan (upward rank) of a task, in seconds.
    pub fn rpm_secs(&self, t: TaskId) -> f64 {
        self.rpm[t.index()]
    }

    /// Longest-path distance from the entry task to the *start* of `t`, in seconds
    /// (HEFT's downward rank).
    pub fn downward_rank_secs(&self, t: TaskId) -> f64 {
        self.downward[t.index()]
    }

    /// Expected finish time of the whole workflow, `eft(f)` of Eq. (1): the critical-path
    /// length under average costs, in seconds.
    pub fn expected_finish_time_secs(&self) -> f64 {
        self.rpm
            .first()
            .map(|_| self.rpm[self.critical_path[0].index()])
            .unwrap_or(0.0)
    }

    /// One critical path from the entry to the exit task.
    pub fn critical_path(&self) -> &[TaskId] {
        &self.critical_path
    }

    /// Task ids sorted by decreasing RPM (HEFT's list-scheduling order).
    pub fn tasks_by_decreasing_rpm(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.rpm.len() as u32).map(TaskId).collect();
        ids.sort_by(|a, b| {
            self.rpm[b.index()]
                .partial_cmp(&self.rpm[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Task, WorkflowBuilder};

    /// A chain a(100 MI) -data 50Mb-> b(200 MI) -data 100Mb-> c(300 MI) under unit averages.
    fn chain() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let a = b.add_simple_task(100.0, 10.0);
        let t_b = b.add_simple_task(200.0, 10.0);
        let c = b.add_simple_task(300.0, 10.0);
        b.add_dependency(a, t_b, 50.0);
        b.add_dependency(t_b, c, 100.0);
        b.build().unwrap()
    }

    #[test]
    fn expected_costs_convert_load_and_data() {
        let c = ExpectedCosts::new(4.0, 2.0);
        assert_eq!(c.eet_secs(100.0), 25.0);
        assert_eq!(c.ett_secs(100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ExpectedCosts::new(0.0, 1.0);
    }

    #[test]
    fn chain_rpm_is_remaining_path_length() {
        let w = chain();
        let a = WorkflowAnalysis::new(&w, ExpectedCosts::new(1.0, 1.0));
        // rpm(c) = 300; rpm(b) = 200 + 100 + 300 = 600; rpm(a) = 100 + 50 + 600 = 750.
        assert_eq!(a.rpm_secs(TaskId(2)), 300.0);
        assert_eq!(a.rpm_secs(TaskId(1)), 600.0);
        assert_eq!(a.rpm_secs(TaskId(0)), 750.0);
        assert_eq!(a.expected_finish_time_secs(), 750.0);
        assert_eq!(a.critical_path(), &[TaskId(0), TaskId(1), TaskId(2)]);
        // Downward ranks: a=0, b=150, c=450.
        assert_eq!(a.downward_rank_secs(TaskId(0)), 0.0);
        assert_eq!(a.downward_rank_secs(TaskId(1)), 150.0);
        assert_eq!(a.downward_rank_secs(TaskId(2)), 450.0);
    }

    #[test]
    fn diamond_critical_path_picks_heavier_branch() {
        // entry -> {light, heavy} -> exit, heavy branch dominates.
        let mut b = WorkflowBuilder::new();
        let entry = b.add_task(Task::named("entry", 10.0, 1.0));
        let light = b.add_task(Task::named("light", 20.0, 1.0));
        let heavy = b.add_task(Task::named("heavy", 500.0, 1.0));
        let exit = b.add_task(Task::named("exit", 10.0, 1.0));
        b.add_dependency(entry, light, 5.0);
        b.add_dependency(entry, heavy, 5.0);
        b.add_dependency(light, exit, 5.0);
        b.add_dependency(heavy, exit, 5.0);
        let w = b.build().unwrap();
        let a = WorkflowAnalysis::new(&w, ExpectedCosts::new(1.0, 1.0));
        assert_eq!(a.critical_path(), &[entry, heavy, exit]);
        // eft = 10 + 5 + 500 + 5 + 10 = 530.
        assert_eq!(a.expected_finish_time_secs(), 530.0);
        // The heavy branch has the larger RPM.
        assert!(a.rpm_secs(heavy) > a.rpm_secs(light));
        // Decreasing-RPM order starts with the entry task and ends with the exit task.
        let order = a.tasks_by_decreasing_rpm();
        assert_eq!(order[0], entry);
        assert_eq!(*order.last().unwrap(), exit);
    }

    #[test]
    fn averages_scale_rpm_linearly() {
        let w = chain();
        let slow = WorkflowAnalysis::new(&w, ExpectedCosts::new(1.0, 1.0));
        let fast = WorkflowAnalysis::new(&w, ExpectedCosts::new(2.0, 2.0));
        for t in w.task_ids() {
            assert!((slow.rpm_secs(t) / 2.0 - fast.rpm_secs(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn single_task_workflow() {
        let mut b = WorkflowBuilder::new();
        let only = b.add_simple_task(500.0, 1.0);
        let w = b.build().unwrap();
        let a = WorkflowAnalysis::new(&w, ExpectedCosts::new(5.0, 1.0));
        assert_eq!(a.rpm_secs(only), 100.0);
        assert_eq!(a.expected_finish_time_secs(), 100.0);
        assert_eq!(a.critical_path(), &[only]);
    }

    #[test]
    fn virtual_entry_exit_do_not_add_cost() {
        // Two parallel chains that get a virtual entry and exit during normalisation.
        let mut b = WorkflowBuilder::new();
        let a1 = b.add_simple_task(100.0, 1.0);
        let a2 = b.add_simple_task(100.0, 1.0);
        let b1 = b.add_simple_task(300.0, 1.0);
        let b2 = b.add_simple_task(300.0, 1.0);
        b.add_dependency(a1, a2, 10.0);
        b.add_dependency(b1, b2, 10.0);
        let w = b.build().unwrap();
        let a = WorkflowAnalysis::new(&w, ExpectedCosts::new(1.0, 1.0));
        // Critical path = virtual entry + b1 + 10 + b2 + virtual exit = 610.
        assert_eq!(a.expected_finish_time_secs(), 610.0);
        assert!(w.task(w.entry()).is_virtual());
        let cp = a.critical_path();
        assert_eq!(cp.first().copied(), Some(w.entry()));
        assert_eq!(cp.last().copied(), Some(w.exit()));
        assert!(cp.contains(&b1) && cp.contains(&b2));
    }
}
