//! The master's typed state machine: jobs, run-units, workers.
//!
//! [`MasterState`] is a *pure* state machine — every mutation takes the current time as an
//! explicit `now_ms` argument and no method reads a clock, spawns a thread or touches a
//! socket.  The TCP server drives it with wall time, the in-process loopback transport with a
//! manually advanced counter, which is what makes the whole protocol (including failover and
//! backoff) unit-testable deterministically.
//!
//! Unit lifecycle: `Pending → Assigned → Done`, with `Assigned → Pending` requeues when a
//! worker dies ([`failover`](crate::failover)).  A unit is **never** lost or double-counted:
//! it is in exactly one state; completions for already-done units are idempotent duplicates
//! (the run is deterministic, so any completed execution carries the identical artifact); and
//! requeues are bounded by the [`MasterConfig::retry_budget`].

use crate::protocol::{JobId, JobStatus, WorkerId};
use p2pgrid_experiments::rununit::{
    merge_artifacts, render_result, CampaignError, CampaignSpec, RunUnit,
};
use serde::json::Value;

/// Tunables of one master instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterConfig {
    /// A worker that has not sent any request for this long is declared dead and its
    /// in-flight units requeue.
    pub heartbeat_timeout_ms: u64,
    /// How many times one unit may be requeued after losing its worker before the whole job
    /// is declared failed (mirrors `RecoveryPolicy::Retry { budget, .. }`).
    pub retry_budget: u32,
    /// Linear backoff step: a unit lost for the `n`-th time becomes assignable again only
    /// `n * backoff_ms` after the loss.
    pub backoff_ms: u64,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            heartbeat_timeout_ms: 10_000,
            retry_budget: 3,
            backoff_ms: 500,
        }
    }
}

/// Where one run-unit currently is.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitState {
    /// Waiting for assignment; not assignable before `eligible_at_ms` (retry backoff).
    Pending {
        /// Earliest time this unit may be assigned.
        eligible_at_ms: u64,
    },
    /// Executing on a live worker.
    Assigned {
        /// The worker holding the unit.
        worker: WorkerId,
    },
    /// An artifact has been stored.
    Done,
}

/// One run-unit plus its scheduling bookkeeping.
#[derive(Debug, Clone)]
pub struct UnitRecord {
    /// The immutable unit coordinates.
    pub unit: RunUnit,
    /// Current lifecycle state.
    pub state: UnitState,
    /// How many times this unit's execution has been lost (worker death or reported
    /// failure).
    pub attempts: u32,
    /// The unit's artifact, present exactly when `state == Done`.
    pub artifact: Option<Value>,
}

/// Whether a job is still making progress.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Units remain to execute.
    Running,
    /// Every unit is done; the merged artifact can be fetched.
    Complete,
    /// A unit exhausted its retry budget (or execution failed deterministically).
    Failed {
        /// Why the job was abandoned.
        reason: String,
    },
}

/// One submitted campaign.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's identity.
    pub id: JobId,
    /// The campaign spec it decomposed from.
    pub spec: CampaignSpec,
    /// All run-units, in canonical decomposition order (`units[i].unit.index == i`).
    pub units: Vec<UnitRecord>,
    /// Overall job state.
    pub state: JobState,
}

/// One registered worker.
#[derive(Debug, Clone)]
pub struct WorkerRecord {
    /// The worker's identity.
    pub id: WorkerId,
    /// Self-reported host name.
    pub hostname: String,
    /// Last time any request arrived from this worker.
    pub last_seen_ms: u64,
    /// False once declared dead; dead workers must re-register.
    pub alive: bool,
}

/// Outcome of a [`MasterState::pull`].
#[derive(Debug, Clone)]
pub enum PullOutcome {
    /// A unit was assigned.
    Assigned {
        /// The job the unit belongs to.
        job: JobId,
        /// The unit to execute.
        unit: RunUnit,
        /// The job's campaign spec.
        spec: CampaignSpec,
    },
    /// Nothing is assignable right now.
    Idle,
    /// The worker id is unknown or expired.
    Unregistered,
}

/// Outcome of a [`MasterState::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// The artifact was stored.
    Accepted,
    /// The unit was already done; the duplicate is ignored (the artifact is identical by
    /// determinism).
    Duplicate,
    /// No such job or unit.
    Unknown,
}

/// The master's entire mutable state.
#[derive(Debug)]
pub struct MasterState {
    /// Tunables.
    pub config: MasterConfig,
    jobs: Vec<JobRecord>,
    workers: Vec<WorkerRecord>,
}

impl MasterState {
    /// An empty master.
    pub fn new(config: MasterConfig) -> Self {
        MasterState {
            config,
            jobs: Vec::new(),
            workers: Vec::new(),
        }
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// All ever-registered workers (including dead ones).
    pub fn workers(&self) -> &[WorkerRecord] {
        &self.workers
    }

    /// Number of workers currently considered alive.
    pub fn workers_alive(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Accept a campaign spec as a new job.
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<(JobId, usize), CampaignError> {
        spec.validate()?;
        let id = JobId(self.jobs.len() as u64);
        let units: Vec<UnitRecord> = spec
            .units()
            .into_iter()
            .map(|unit| UnitRecord {
                unit,
                state: UnitState::Pending { eligible_at_ms: 0 },
                attempts: 0,
                artifact: None,
            })
            .collect();
        let count = units.len();
        self.jobs.push(JobRecord {
            id,
            spec,
            units,
            state: JobState::Running,
        });
        Ok((id, count))
    }

    /// Register a new worker.
    pub fn register(&mut self, hostname: impl Into<String>, now_ms: u64) -> WorkerId {
        let id = WorkerId(self.workers.len() as u64);
        self.workers.push(WorkerRecord {
            id,
            hostname: hostname.into(),
            last_seen_ms: now_ms,
            alive: true,
        });
        id
    }

    /// Record liveness for a worker; false when unknown or expired (the worker must
    /// re-register).
    pub fn heartbeat(&mut self, worker: WorkerId, now_ms: u64) -> bool {
        match self.workers.get_mut(worker.0 as usize) {
            Some(w) if w.alive => {
                w.last_seen_ms = now_ms;
                true
            }
            _ => false,
        }
    }

    /// Assign the next eligible unit to a worker: jobs in submission order, units in
    /// canonical index order, retry-backoff delays respected.
    pub fn pull(&mut self, worker: WorkerId, now_ms: u64) -> PullOutcome {
        if !self.heartbeat(worker, now_ms) {
            return PullOutcome::Unregistered;
        }
        for job in &mut self.jobs {
            if job.state != JobState::Running {
                continue;
            }
            for record in &mut job.units {
                match record.state {
                    UnitState::Pending { eligible_at_ms } if eligible_at_ms <= now_ms => {
                        record.state = UnitState::Assigned { worker };
                        return PullOutcome::Assigned {
                            job: job.id,
                            unit: record.unit,
                            spec: job.spec.clone(),
                        };
                    }
                    _ => {}
                }
            }
        }
        PullOutcome::Idle
    }

    /// Store a finished unit's artifact.
    ///
    /// Accepted from *any* worker — including one already declared dead whose unit was
    /// requeued: the execution is deterministic, so every completed run of a unit carries
    /// the identical artifact, and accepting the first arrival can only reduce wasted work.
    /// Duplicate completions (unit already `Done`) are ignored.
    pub fn complete(
        &mut self,
        worker: WorkerId,
        job: JobId,
        unit: usize,
        artifact: Value,
        now_ms: u64,
    ) -> CompleteOutcome {
        self.heartbeat(worker, now_ms);
        let Some(job) = self.jobs.get_mut(job.0 as usize) else {
            return CompleteOutcome::Unknown;
        };
        let Some(record) = job.units.get_mut(unit) else {
            return CompleteOutcome::Unknown;
        };
        if record.state == UnitState::Done {
            return CompleteOutcome::Duplicate;
        }
        record.state = UnitState::Done;
        record.artifact = Some(artifact);
        if job.state == JobState::Running && job.units.iter().all(|u| u.state == UnitState::Done) {
            job.state = JobState::Complete;
        }
        CompleteOutcome::Accepted
    }

    /// A worker reported that executing a unit failed; requeue it under the retry budget.
    pub fn fail_unit(
        &mut self,
        worker: WorkerId,
        job: JobId,
        unit: usize,
        reason: &str,
        now_ms: u64,
    ) -> bool {
        self.heartbeat(worker, now_ms);
        if self.jobs.get(job.0 as usize).is_none() {
            return false;
        }
        self.requeue_unit(job.0 as usize, unit, now_ms, reason)
    }

    /// Put a lost unit back in the queue with linear backoff, or fail the whole job once
    /// the unit's retry budget is exhausted.  Returns false for unknown/done units.
    pub(crate) fn requeue_unit(
        &mut self,
        job_idx: usize,
        unit: usize,
        now_ms: u64,
        reason: &str,
    ) -> bool {
        let budget = self.config.retry_budget;
        let backoff = self.config.backoff_ms;
        let Some(job) = self.jobs.get_mut(job_idx) else {
            return false;
        };
        let Some(record) = job.units.get_mut(unit) else {
            return false;
        };
        if record.state == UnitState::Done {
            return false;
        }
        record.attempts += 1;
        if record.attempts > budget {
            if job.state == JobState::Running {
                job.state = JobState::Failed {
                    reason: format!("unit {unit} exceeded its retry budget of {budget} ({reason})"),
                };
            }
            record.state = UnitState::Pending {
                eligible_at_ms: u64::MAX,
            };
        } else {
            record.state = UnitState::Pending {
                eligible_at_ms: now_ms + u64::from(record.attempts) * backoff,
            };
        }
        true
    }

    /// A job's progress snapshot.
    pub fn status(&self, job: JobId) -> Option<JobStatus> {
        let job = self.jobs.get(job.0 as usize)?;
        let mut done = 0;
        let mut in_flight = 0;
        let mut pending = 0;
        for u in &job.units {
            match u.state {
                UnitState::Done => done += 1,
                UnitState::Assigned { .. } => in_flight += 1,
                UnitState::Pending { .. } => pending += 1,
            }
        }
        let (state, reason) = match &job.state {
            JobState::Running => ("running", None),
            JobState::Complete => ("complete", None),
            JobState::Failed { reason } => ("failed", Some(reason.clone())),
        };
        Some(JobStatus {
            job: job.id,
            state: state.to_string(),
            reason,
            total: job.units.len(),
            done,
            in_flight,
            pending,
            workers_alive: self.workers_alive(),
        })
    }

    /// The merged artifact of a completed job.
    pub fn fetch(&self, job: JobId) -> Result<Value, String> {
        let job = self
            .jobs
            .get(job.0 as usize)
            .ok_or_else(|| format!("unknown job {job}"))?;
        match &job.state {
            JobState::Complete => {}
            JobState::Running => return Err(format!("{} is still running", job.id)),
            JobState::Failed { reason } => return Err(format!("{} failed: {reason}", job.id)),
        }
        let artifacts: Vec<Value> = job
            .units
            .iter()
            .map(|u| u.artifact.clone().expect("done unit has an artifact"))
            .collect();
        merge_artifacts(&job.spec, &artifacts).map_err(|e| format!("merge failed: {e}"))
    }

    /// The merged artifact rendered the way it lands on disk (pretty + trailing newline).
    pub fn fetch_rendered(&self, job: JobId) -> Result<String, String> {
        self.fetch(job).map(|v| render_result(&v))
    }

    /// Check the structural invariants the proptest suite relies on; panics on violation.
    ///
    /// Cheap (linear in units), so tests call it after every operation.
    pub fn assert_invariants(&self) {
        for (i, job) in self.jobs.iter().enumerate() {
            assert_eq!(job.id.0 as usize, i, "job ids are dense submission indices");
            for (u, record) in job.units.iter().enumerate() {
                assert_eq!(record.unit.index, u, "units stay in canonical order");
                assert_eq!(
                    record.artifact.is_some(),
                    record.state == UnitState::Done,
                    "artifact present iff done"
                );
                assert!(
                    record.attempts <= self.config.retry_budget + 1,
                    "attempts stay bounded by the retry budget"
                );
                if let UnitState::Assigned { worker } = record.state {
                    let w = &self.workers[worker.0 as usize];
                    assert!(w.alive, "units are only assigned to live workers");
                }
            }
            if job.state == JobState::Complete {
                assert!(
                    job.units.iter().all(|u| u.state == UnitState::Done),
                    "complete jobs have every unit done"
                );
            }
        }
    }

    pub(crate) fn workers_mut(&mut self) -> &mut Vec<WorkerRecord> {
        &mut self.workers
    }
}
