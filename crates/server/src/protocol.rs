//! Wire protocol: typed requests/responses encoded as newline-delimited JSON.
//!
//! Every message is one compact JSON object per line with a `type` discriminator, written
//! with the wire-strict serializer (`Value::to_wire_string`) so non-finite numbers can never
//! corrupt a stream.  The same encoding is used verbatim by the TCP transport and the
//! in-process loopback transport — the loopback serializes and re-parses every message, so
//! protocol bugs surface in deterministic unit tests long before a socket is involved.

use p2pgrid_core::Algorithm;
use p2pgrid_experiments::rununit::{CampaignSpec, RunUnit};
use serde::json::Value;
use std::fmt;

/// Identifier of one submitted campaign job (dense, master-assigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Identifier of one registered worker (dense, master-assigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u64);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// A message a client or worker sends to the master.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A worker announces itself and asks for an identity.
    Register {
        /// Self-reported host name, for status displays only.
        hostname: String,
    },
    /// A worker proves liveness without asking for work.
    Heartbeat {
        /// The registered worker.
        worker: WorkerId,
    },
    /// A worker asks for its next run-unit.
    Pull {
        /// The registered worker.
        worker: WorkerId,
    },
    /// A worker returns the artifact of a finished run-unit.
    Complete {
        /// The registered worker.
        worker: WorkerId,
        /// The job the unit belongs to.
        job: JobId,
        /// The unit's index within the job.
        unit: usize,
        /// The unit's `p2pgrid-campaign-unit/v1` artifact document.
        artifact: Value,
    },
    /// A worker reports that executing a run-unit failed.
    FailUnit {
        /// The registered worker.
        worker: WorkerId,
        /// The job the unit belongs to.
        job: JobId,
        /// The unit's index within the job.
        unit: usize,
        /// Why execution failed.
        reason: String,
    },
    /// A client submits a campaign spec as a new job.
    Submit {
        /// The campaign to decompose and execute.
        spec: CampaignSpec,
    },
    /// A client asks for a job's progress.
    Status {
        /// The job to describe.
        job: JobId,
    },
    /// A client asks for a completed job's merged artifact.
    Fetch {
        /// The job to fetch.
        job: JobId,
    },
    /// A client asks the master process to stop serving.
    Shutdown,
}

/// Progress snapshot of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job described.
    pub job: JobId,
    /// `"running"`, `"complete"` or `"failed"`.
    pub state: String,
    /// Failure reason, when `state == "failed"`.
    pub reason: Option<String>,
    /// Total run-units in the job.
    pub total: usize,
    /// Units with an artifact.
    pub done: usize,
    /// Units currently assigned to live workers.
    pub in_flight: usize,
    /// Units waiting for assignment (including backoff delays).
    pub pending: usize,
    /// Workers currently considered alive by the master.
    pub workers_alive: usize,
}

impl JobStatus {
    /// One-line human rendering for polling clients.
    pub fn render(&self) -> String {
        format!(
            "{}: {} — {}/{} done, {} in flight, {} pending, {} workers alive{}",
            self.job,
            self.state,
            self.done,
            self.total,
            self.in_flight,
            self.pending,
            self.workers_alive,
            self.reason
                .as_deref()
                .map(|r| format!(" ({r})"))
                .unwrap_or_default()
        )
    }
}

/// The master's reply to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Registration succeeded.
    Registered {
        /// The identity assigned to the worker.
        worker: WorkerId,
        /// The heartbeat timeout the master enforces; workers should report in well within
        /// this interval.
        heartbeat_ms: u64,
    },
    /// Acknowledgement with no payload.
    Ok,
    /// A run-unit assignment.
    Assignment {
        /// The job the unit belongs to.
        job: JobId,
        /// The unit to execute.
        unit: RunUnit,
        /// The campaign spec (workers cache one `UnitRunner` per job from it).
        spec: CampaignSpec,
    },
    /// No unit is currently assignable; ask again later.
    Idle,
    /// The sender's worker id is unknown or expired; it must register again.
    Unregistered,
    /// A submitted job was accepted.
    Accepted {
        /// The new job's identity.
        job: JobId,
        /// Number of run-units the campaign decomposed into.
        units: usize,
    },
    /// A job progress snapshot.
    Status(JobStatus),
    /// A completed job's merged artifact.
    Artifact {
        /// The job fetched.
        job: JobId,
        /// The merged `p2pgrid-campaign-result/v1` document.
        body: Value,
    },
    /// The master acknowledges a shutdown request and will stop serving.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// A message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn perr(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

fn field_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, ProtocolError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| perr(format!("missing string field `{key}`")))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, ProtocolError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| perr(format!("missing integer field `{key}`")))
}

fn field_value<'v>(v: &'v Value, key: &str) -> Result<&'v Value, ProtocolError> {
    v.get(key)
        .ok_or_else(|| perr(format!("missing field `{key}`")))
}

/// Encode a run-unit as its wire object.
pub fn unit_to_json(unit: &RunUnit) -> Value {
    Value::object([
        ("index", Value::from(unit.index)),
        ("seed", Value::from(unit.seed)),
        ("algorithm", Value::from(unit.algorithm.name())),
    ])
}

/// Decode a run-unit from its wire object.
pub fn unit_from_json(v: &Value) -> Result<RunUnit, ProtocolError> {
    let name = field_str(v, "algorithm")?;
    Ok(RunUnit {
        index: field_u64(v, "index")? as usize,
        seed: field_u64(v, "seed")?,
        algorithm: Algorithm::parse(name)
            .ok_or_else(|| perr(format!("unknown algorithm `{name}`")))?,
    })
}

impl Request {
    /// Encode as a wire object.
    pub fn to_json(&self) -> Value {
        match self {
            Request::Register { hostname } => Value::object([
                ("type", Value::from("register")),
                ("hostname", Value::from(hostname.as_str())),
            ]),
            Request::Heartbeat { worker } => Value::object([
                ("type", Value::from("heartbeat")),
                ("worker", Value::from(worker.0)),
            ]),
            Request::Pull { worker } => Value::object([
                ("type", Value::from("pull")),
                ("worker", Value::from(worker.0)),
            ]),
            Request::Complete {
                worker,
                job,
                unit,
                artifact,
            } => Value::object([
                ("type", Value::from("complete")),
                ("worker", Value::from(worker.0)),
                ("job", Value::from(job.0)),
                ("unit", Value::from(*unit)),
                ("artifact", artifact.clone()),
            ]),
            Request::FailUnit {
                worker,
                job,
                unit,
                reason,
            } => Value::object([
                ("type", Value::from("fail_unit")),
                ("worker", Value::from(worker.0)),
                ("job", Value::from(job.0)),
                ("unit", Value::from(*unit)),
                ("reason", Value::from(reason.as_str())),
            ]),
            Request::Submit { spec } => {
                Value::object([("type", Value::from("submit")), ("spec", spec.to_json())])
            }
            Request::Status { job } => {
                Value::object([("type", Value::from("status")), ("job", Value::from(job.0))])
            }
            Request::Fetch { job } => {
                Value::object([("type", Value::from("fetch")), ("job", Value::from(job.0))])
            }
            Request::Shutdown => Value::object([("type", Value::from("shutdown"))]),
        }
    }

    /// Decode from a wire object.
    pub fn from_json(v: &Value) -> Result<Request, ProtocolError> {
        match field_str(v, "type")? {
            "register" => Ok(Request::Register {
                hostname: field_str(v, "hostname")?.to_string(),
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                worker: WorkerId(field_u64(v, "worker")?),
            }),
            "pull" => Ok(Request::Pull {
                worker: WorkerId(field_u64(v, "worker")?),
            }),
            "complete" => Ok(Request::Complete {
                worker: WorkerId(field_u64(v, "worker")?),
                job: JobId(field_u64(v, "job")?),
                unit: field_u64(v, "unit")? as usize,
                artifact: field_value(v, "artifact")?.clone(),
            }),
            "fail_unit" => Ok(Request::FailUnit {
                worker: WorkerId(field_u64(v, "worker")?),
                job: JobId(field_u64(v, "job")?),
                unit: field_u64(v, "unit")? as usize,
                reason: field_str(v, "reason")?.to_string(),
            }),
            "submit" => Ok(Request::Submit {
                spec: CampaignSpec::from_json(field_value(v, "spec")?)
                    .map_err(|e| perr(e.to_string()))?,
            }),
            "status" => Ok(Request::Status {
                job: JobId(field_u64(v, "job")?),
            }),
            "fetch" => Ok(Request::Fetch {
                job: JobId(field_u64(v, "job")?),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(perr(format!("unknown request type `{other}`"))),
        }
    }
}

impl Response {
    /// Encode as a wire object.
    pub fn to_json(&self) -> Value {
        match self {
            Response::Registered {
                worker,
                heartbeat_ms,
            } => Value::object([
                ("type", Value::from("registered")),
                ("worker", Value::from(worker.0)),
                ("heartbeat_ms", Value::from(*heartbeat_ms)),
            ]),
            Response::Ok => Value::object([("type", Value::from("ok"))]),
            Response::Assignment { job, unit, spec } => Value::object([
                ("type", Value::from("assignment")),
                ("job", Value::from(job.0)),
                ("unit", unit_to_json(unit)),
                ("spec", spec.to_json()),
            ]),
            Response::Idle => Value::object([("type", Value::from("idle"))]),
            Response::Unregistered => Value::object([("type", Value::from("unregistered"))]),
            Response::Accepted { job, units } => Value::object([
                ("type", Value::from("accepted")),
                ("job", Value::from(job.0)),
                ("units", Value::from(*units)),
            ]),
            Response::Status(s) => {
                let mut fields = vec![
                    ("type", Value::from("status")),
                    ("job", Value::from(s.job.0)),
                    ("state", Value::from(s.state.as_str())),
                    ("total", Value::from(s.total)),
                    ("done", Value::from(s.done)),
                    ("in_flight", Value::from(s.in_flight)),
                    ("pending", Value::from(s.pending)),
                    ("workers_alive", Value::from(s.workers_alive)),
                ];
                if let Some(reason) = &s.reason {
                    fields.push(("reason", Value::from(reason.as_str())));
                }
                Value::object(fields)
            }
            Response::Artifact { job, body } => Value::object([
                ("type", Value::from("artifact")),
                ("job", Value::from(job.0)),
                ("body", body.clone()),
            ]),
            Response::ShuttingDown => Value::object([("type", Value::from("shutting_down"))]),
            Response::Error { message } => Value::object([
                ("type", Value::from("error")),
                ("message", Value::from(message.as_str())),
            ]),
        }
    }

    /// Decode from a wire object.
    pub fn from_json(v: &Value) -> Result<Response, ProtocolError> {
        match field_str(v, "type")? {
            "registered" => Ok(Response::Registered {
                worker: WorkerId(field_u64(v, "worker")?),
                heartbeat_ms: field_u64(v, "heartbeat_ms")?,
            }),
            "ok" => Ok(Response::Ok),
            "assignment" => Ok(Response::Assignment {
                job: JobId(field_u64(v, "job")?),
                unit: unit_from_json(field_value(v, "unit")?)?,
                spec: CampaignSpec::from_json(field_value(v, "spec")?)
                    .map_err(|e| perr(e.to_string()))?,
            }),
            "idle" => Ok(Response::Idle),
            "unregistered" => Ok(Response::Unregistered),
            "accepted" => Ok(Response::Accepted {
                job: JobId(field_u64(v, "job")?),
                units: field_u64(v, "units")? as usize,
            }),
            "status" => Ok(Response::Status(JobStatus {
                job: JobId(field_u64(v, "job")?),
                state: field_str(v, "state")?.to_string(),
                reason: v.get("reason").and_then(Value::as_str).map(str::to_string),
                total: field_u64(v, "total")? as usize,
                done: field_u64(v, "done")? as usize,
                in_flight: field_u64(v, "in_flight")? as usize,
                pending: field_u64(v, "pending")? as usize,
                workers_alive: field_u64(v, "workers_alive")? as usize,
            })),
            "artifact" => Ok(Response::Artifact {
                job: JobId(field_u64(v, "job")?),
                body: field_value(v, "body")?.clone(),
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: field_str(v, "message")?.to_string(),
            }),
            other => Err(perr(format!("unknown response type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pgrid_experiments::ExperimentScale;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "t".into(),
            scale: ExperimentScale::Smoke,
            seeds: vec![1],
            algorithms: vec![Algorithm::Dsmf],
            workload: None,
        }
    }

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let reqs = [
            Request::Register {
                hostname: "h\"x".into(),
            },
            Request::Heartbeat {
                worker: WorkerId(3),
            },
            Request::Pull {
                worker: WorkerId(3),
            },
            Request::Complete {
                worker: WorkerId(3),
                job: JobId(1),
                unit: 2,
                artifact: Value::object([("format", Value::from("x"))]),
            },
            Request::FailUnit {
                worker: WorkerId(3),
                job: JobId(1),
                unit: 2,
                reason: "boom".into(),
            },
            Request::Submit { spec: spec() },
            Request::Status { job: JobId(0) },
            Request::Fetch { job: JobId(0) },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_json().to_wire_string().unwrap();
            let back = Request::from_json(&serde::json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_encoding() {
        let resps = [
            Response::Registered {
                worker: WorkerId(1),
                heartbeat_ms: 5000,
            },
            Response::Ok,
            Response::Assignment {
                job: JobId(0),
                unit: RunUnit {
                    index: 1,
                    seed: 9,
                    algorithm: Algorithm::MinMin,
                },
                spec: spec(),
            },
            Response::Idle,
            Response::Unregistered,
            Response::Accepted {
                job: JobId(4),
                units: 6,
            },
            Response::Status(JobStatus {
                job: JobId(4),
                state: "failed".into(),
                reason: Some("retry budget exhausted".into()),
                total: 6,
                done: 2,
                in_flight: 1,
                pending: 3,
                workers_alive: 2,
            }),
            Response::Artifact {
                job: JobId(4),
                body: Value::Null,
            },
            Response::ShuttingDown,
            Response::Error {
                message: "nope".into(),
            },
        ];
        for resp in resps {
            let line = resp.to_json().to_wire_string().unwrap();
            let back = Response::from_json(&serde::json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn decode_rejects_malformed_messages() {
        let bad = [
            "{\"type\":\"nope\"}",
            "{\"hostname\":\"h\"}",
            "{\"type\":\"pull\"}",
            "{\"type\":\"complete\",\"worker\":1,\"job\":0,\"unit\":2}",
        ];
        for text in bad {
            let v = serde::json::parse(text).unwrap();
            assert!(Request::from_json(&v).is_err(), "{text}");
        }
    }
}
