//! The worker side: register, pull run-units, execute, stream artifacts back.
//!
//! [`Worker`] is generic over [`Transport`], so the same execution loop runs against the
//! in-process loopback master in tests and a real TCP master in production.  Execution goes
//! through [`UnitRunner`], which derives every seed's world copy-on-write from one shared
//! base scenario per campaign — a worker executing many units of the same job pays for a
//! single topology build.

use crate::protocol::{JobId, Request, Response, WorkerId};
use crate::transport::{Transport, TransportError};
use p2pgrid_experiments::rununit::{RunUnit, UnitRunner};
use std::collections::HashMap;

/// What one [`Worker::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Pulled and executed one unit (successfully or not — either way it was reported).
    Executed {
        /// The job the unit belonged to.
        job: JobId,
        /// The unit's index within the job.
        unit: usize,
    },
    /// The master had nothing assignable.
    Idle,
    /// The master is shutting down or rejected us permanently.
    Stopped,
}

/// A campaign worker bound to one master connection.
pub struct Worker<T: Transport> {
    transport: T,
    hostname: String,
    id: Option<WorkerId>,
    /// One cached runner per job, so repeated units of the same campaign share a base world.
    runners: HashMap<u64, UnitRunner>,
    /// Fault-injection hook: execute this many units, then return an error from `step` as if
    /// the process died.
    die_after: Option<usize>,
    executed: usize,
}

impl<T: Transport> Worker<T> {
    /// A new worker that will register itself on first use.
    pub fn new(transport: T, hostname: impl Into<String>) -> Self {
        Worker {
            transport,
            hostname: hostname.into(),
            id: None,
            runners: HashMap::new(),
            die_after: None,
            executed: 0,
        }
    }

    /// Kill this worker after it has executed `n` units (test/fault-injection hook, also
    /// exposed as `p2pgrid-worker --die-after`).
    pub fn die_after(mut self, n: usize) -> Self {
        self.die_after = Some(n);
        self
    }

    /// This worker's id, once registered.
    pub fn id(&self) -> Option<WorkerId> {
        self.id
    }

    /// How many units this worker has executed.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Access the underlying transport (to inject faults in tests).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn ensure_registered(&mut self) -> Result<WorkerId, TransportError> {
        if let Some(id) = self.id {
            return Ok(id);
        }
        let response = self.transport.call(&Request::Register {
            hostname: self.hostname.clone(),
        })?;
        match response {
            Response::Registered { worker, .. } => {
                self.id = Some(worker);
                Ok(worker)
            }
            other => Err(TransportError::Protocol(format!(
                "unexpected response to register: {other:?}"
            ))),
        }
    }

    /// Send one heartbeat (the TCP binary runs this on a dedicated thread).
    pub fn heartbeat(&mut self) -> Result<(), TransportError> {
        let worker = self.ensure_registered()?;
        match self.transport.call(&Request::Heartbeat { worker })? {
            Response::Ok => Ok(()),
            Response::Unregistered => {
                self.id = None;
                Ok(())
            }
            other => Err(TransportError::Protocol(format!(
                "unexpected response to heartbeat: {other:?}"
            ))),
        }
    }

    /// Pull one assignment from the master and execute it.
    pub fn step(&mut self) -> Result<Step, TransportError> {
        let worker = self.ensure_registered()?;
        let response = self.transport.call(&Request::Pull { worker })?;
        match response {
            Response::Assignment { job, unit, spec } => {
                if self.die_after == Some(self.executed) {
                    // Simulated crash: the unit has been pulled but will never be reported,
                    // exactly the window failover has to cover.
                    return Err(TransportError::Disconnected(format!(
                        "{} died after {} units",
                        self.hostname, self.executed
                    )));
                }
                self.execute(worker, job, unit, spec)?;
                self.executed += 1;
                Ok(Step::Executed {
                    job,
                    unit: unit.index,
                })
            }
            Response::Idle => Ok(Step::Idle),
            Response::Unregistered => {
                // Expired (e.g. after a long pause): drop the stale id and re-register on
                // the next step.
                self.id = None;
                Ok(Step::Idle)
            }
            Response::ShuttingDown => Ok(Step::Stopped),
            other => Err(TransportError::Protocol(format!(
                "unexpected response to pull: {other:?}"
            ))),
        }
    }

    fn execute(
        &mut self,
        worker: WorkerId,
        job: JobId,
        unit: RunUnit,
        spec: p2pgrid_experiments::CampaignSpec,
    ) -> Result<(), TransportError> {
        use std::collections::hash_map::Entry;
        let runner = match self.runners.entry(job.0) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => match UnitRunner::new(spec) {
                Ok(runner) => Ok(e.insert(runner)),
                Err(err) => Err(err),
            },
        };
        let report = match runner {
            Ok(runner) => runner.run(&unit),
            Err(err) => Err(err),
        };
        let request = match report {
            Ok(artifact) => Request::Complete {
                worker,
                job,
                unit: unit.index,
                artifact,
            },
            Err(err) => Request::FailUnit {
                worker,
                job,
                unit: unit.index,
                reason: err.to_string(),
            },
        };
        match self.transport.call(&request)? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(TransportError::Protocol(message)),
            other => Err(TransportError::Protocol(format!(
                "unexpected response to completion: {other:?}"
            ))),
        }
    }

    /// Pull-execute until the master shuts down, calling `on_idle` between empty pulls
    /// (return false from it to stop).
    pub fn run(&mut self, mut on_idle: impl FnMut() -> bool) -> Result<(), TransportError> {
        loop {
            match self.step()? {
                Step::Executed { .. } => {}
                Step::Idle => {
                    if !on_idle() {
                        return Ok(());
                    }
                }
                Step::Stopped => return Ok(()),
            }
        }
    }
}
