//! `p2pgrid-worker` — a campaign execution worker.
//!
//! ```text
//! p2pgrid-worker --master 127.0.0.1:7700 [--hostname NAME] [--die-after N] [--idle-ms 200]
//! ```
//!
//! Registers with the master, pulls run-units, executes them through the copy-on-write
//! campaign machinery and streams the artifacts back.  A dedicated thread heartbeats on its
//! own connection so long-running units do not look like a dead worker.  `--die-after N`
//! makes the process exit abruptly after executing N units — the fault-injection hook the CI
//! smoke test uses to prove failover.

use p2pgrid_server::tcp::TcpTransport;
use p2pgrid_server::{Step, Worker};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: p2pgrid-worker --master HOST:PORT [--hostname NAME] [--die-after N] [--idle-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut master = None;
    let mut hostname = format!("worker-{}", std::process::id());
    let mut die_after = None;
    let mut idle_ms = 200u64;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--master" => master = args.next(),
            "--hostname" => hostname = args.next().unwrap_or_else(|| usage()),
            "--die-after" => {
                die_after = args.next().and_then(|v| v.parse().ok());
                if die_after.is_none() {
                    eprintln!("p2pgrid-worker: --die-after needs a number");
                    usage()
                }
            }
            "--idle-ms" => {
                idle_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("p2pgrid-worker: unknown flag {other}");
                usage()
            }
        }
    }
    let Some(master) = master else { usage() };

    let transport = match TcpTransport::connect(&master) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("p2pgrid-worker: cannot reach master {master}: {e}");
            std::process::exit(1);
        }
    };
    let mut worker = Worker::new(transport, hostname.clone());
    if let Some(n) = die_after {
        worker = worker.die_after(n);
    }

    // Heartbeat on a second connection so a long simulation cannot trip the expiry timer.
    // The heartbeat worker never pulls; it only keeps our id warm once we have one.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_master = master.clone();
    let hb_host = hostname.clone();
    // First step registers and learns the id; share it with the heartbeat thread.
    let shared_id = Arc::new(std::sync::Mutex::new(None));
    let hb_id = Arc::clone(&shared_id);
    let heartbeat = std::thread::spawn(move || {
        let Ok(transport) = TcpTransport::connect(&hb_master) else {
            return;
        };
        let mut transport = transport;
        while !hb_stop.load(Ordering::SeqCst) {
            let id = *hb_id.lock().expect("worker id lock poisoned");
            if let Some(worker) = id {
                let request = p2pgrid_server::Request::Heartbeat { worker };
                use p2pgrid_server::Transport as _;
                if transport.call(&request).is_err() {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(500));
        }
        let _ = hb_host;
    });

    let result = loop {
        match worker.step() {
            Ok(Step::Executed { job, unit }) => {
                eprintln!("p2pgrid-worker[{hostname}]: executed unit {unit} of {job}");
                *shared_id.lock().expect("worker id lock poisoned") = worker.id();
            }
            Ok(Step::Idle) => {
                *shared_id.lock().expect("worker id lock poisoned") = worker.id();
                std::thread::sleep(Duration::from_millis(idle_ms));
            }
            Ok(Step::Stopped) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    match result {
        Ok(()) => eprintln!("p2pgrid-worker[{hostname}]: master shut down, exiting"),
        Err(e) => {
            eprintln!("p2pgrid-worker[{hostname}]: {e}");
            std::process::exit(1);
        }
    }
}
