//! `p2pgrid-master` — the campaign server.
//!
//! ```text
//! p2pgrid-master --addr 127.0.0.1:7700 [--heartbeat-ms 10000] [--retry-budget 3] [--backoff-ms 500]
//! ```
//!
//! Accepts newline-delimited JSON requests (see `p2pgrid_server::protocol`), decomposes
//! submitted campaign specs into run-units, hands them to pulling workers, requeues units
//! lost to dead workers, and serves the merged artifact once every unit is done.  Exits when
//! a client sends `shutdown`.

use p2pgrid_server::tcp::serve;
use p2pgrid_server::MasterConfig;
use std::net::TcpListener;

fn usage() -> ! {
    eprintln!(
        "usage: p2pgrid-master --addr HOST:PORT [--heartbeat-ms N] [--retry-budget N] [--backoff-ms N]"
    );
    std::process::exit(2);
}

fn parse_u64(args: &mut std::env::Args, flag: &str) -> u64 {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("p2pgrid-master: {flag} needs a number");
            usage()
        }
    }
}

fn main() {
    let mut addr = None;
    let mut config = MasterConfig::default();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--heartbeat-ms" => {
                config.heartbeat_timeout_ms = parse_u64(&mut args, "--heartbeat-ms")
            }
            "--retry-budget" => config.retry_budget = parse_u64(&mut args, "--retry-budget") as u32,
            "--backoff-ms" => config.backoff_ms = parse_u64(&mut args, "--backoff-ms"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("p2pgrid-master: unknown flag {other}");
                usage()
            }
        }
    }
    let Some(addr) = addr else { usage() };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("p2pgrid-master: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("p2pgrid-master: listening on {addr}");
    if let Err(e) = serve(listener, config) {
        eprintln!("p2pgrid-master: server error: {e}");
        std::process::exit(1);
    }
    eprintln!("p2pgrid-master: shut down");
}
