//! `p2pgrid-submit` — submit campaigns, poll them, fetch merged artifacts.
//!
//! ```text
//! p2pgrid-submit --master 127.0.0.1:7700 --spec campaigns/smoke.json [--out result.json]
//! p2pgrid-submit --local campaigns/smoke.json [--out result.json]
//! p2pgrid-submit --master 127.0.0.1:7700 --shutdown
//! ```
//!
//! `--local` runs the same spec in-process (no master) and renders the identical artifact —
//! the reference the CI smoke test diffs the distributed result against, byte for byte.

use p2pgrid_experiments::rununit::{render_result, run_local, CampaignSpec};
use p2pgrid_server::tcp::TcpTransport;
use p2pgrid_server::Client;
use std::io::Write;
use std::str::FromStr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: p2pgrid-submit --master HOST:PORT --spec FILE [--out FILE]\n       p2pgrid-submit --local FILE [--out FILE]\n       p2pgrid-submit --master HOST:PORT --shutdown"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("p2pgrid-submit: {message}");
    std::process::exit(1);
}

fn load_spec(path: &str) -> CampaignSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
    CampaignSpec::from_str(&text).unwrap_or_else(|e| fail(format_args!("invalid spec {path}: {e}")))
}

fn emit(rendered: &str, out: Option<&str>) {
    match out {
        Some(path) => std::fs::write(path, rendered)
            .unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}"))),
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(rendered.as_bytes())
                .unwrap_or_else(|e| fail(e));
        }
    }
}

fn main() {
    let mut master = None;
    let mut spec_path = None;
    let mut local_path = None;
    let mut out = None;
    let mut shutdown = false;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--master" => master = args.next(),
            "--spec" => spec_path = args.next(),
            "--local" => local_path = args.next(),
            "--out" => out = args.next(),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("p2pgrid-submit: unknown flag {other}");
                usage()
            }
        }
    }

    if let Some(path) = local_path {
        let spec = load_spec(&path);
        let rendered = run_local(&spec).unwrap_or_else(|e| fail(e));
        emit(&rendered, out.as_deref());
        return;
    }

    let Some(master) = master else { usage() };
    let transport = TcpTransport::connect(&master)
        .unwrap_or_else(|e| fail(format_args!("cannot reach master {master}: {e}")));
    let mut client = Client::new(transport);

    if shutdown {
        client.shutdown().unwrap_or_else(|e| fail(e));
        eprintln!("p2pgrid-submit: master acknowledged shutdown");
        return;
    }

    let Some(path) = spec_path else { usage() };
    let spec = load_spec(&path);
    let (job, units) = client.submit(&spec).unwrap_or_else(|e| fail(e));
    eprintln!("p2pgrid-submit: {job} accepted ({units} units)");
    let status = client
        .wait(job, |status| {
            eprintln!("p2pgrid-submit: {}", status.render());
            std::thread::sleep(Duration::from_millis(250));
        })
        .unwrap_or_else(|e| fail(e));
    eprintln!("p2pgrid-submit: {}", status.render());
    let body = client.fetch(job).unwrap_or_else(|e| fail(e));
    emit(&render_result(&body), out.as_deref());
}
