//! Worker-death detection and run-unit requeueing.
//!
//! The master calls [`expire_workers`] on a timer (the TCP server every ~50 ms, the loopback
//! transport whenever its manual clock advances).  Any worker silent for longer than the
//! heartbeat timeout is declared dead and every unit it held goes back to `Pending` with the
//! retry-backoff delay from [`MasterState::requeue_unit`] — the same bounded-retry shape as
//! the simulation's own `RecoveryPolicy::Retry`.
//!
//! [`MasterState::requeue_unit`]: crate::state::MasterState

use crate::protocol::WorkerId;
use crate::state::{MasterState, UnitState};

/// Declare every worker dead whose last request is older than the heartbeat timeout, and
/// requeue the units it was executing.  Returns the ids of newly expired workers.
pub fn expire_workers(state: &mut MasterState, now_ms: u64) -> Vec<WorkerId> {
    let timeout = state.config.heartbeat_timeout_ms;
    let mut expired = Vec::new();
    for w in state.workers_mut() {
        if w.alive && now_ms.saturating_sub(w.last_seen_ms) > timeout {
            w.alive = false;
            expired.push(w.id);
        }
    }
    for &worker in &expired {
        requeue_assigned(state, worker, now_ms);
    }
    expired
}

/// Requeue every unit currently assigned to `worker` (used on expiry and on dropped TCP
/// connections, where death is detected immediately rather than via the timeout).
pub fn requeue_assigned(state: &mut MasterState, worker: WorkerId, now_ms: u64) {
    let mut lost: Vec<(usize, usize)> = Vec::new();
    for (j, job) in state.jobs().iter().enumerate() {
        for (u, record) in job.units.iter().enumerate() {
            if record.state == (UnitState::Assigned { worker }) {
                lost.push((j, u));
            }
        }
    }
    let reason = format!("lost {worker}");
    for (j, u) in lost {
        state.requeue_unit(j, u, now_ms, &reason);
    }
}

/// Mark one worker dead right now (dropped connection / explicit deregistration) and requeue
/// its units.  No-op for unknown or already-dead workers.
pub fn declare_dead(state: &mut MasterState, worker: WorkerId, now_ms: u64) {
    let Some(w) = state.workers_mut().get_mut(worker.0 as usize) else {
        return;
    };
    if !w.alive {
        return;
    }
    w.alive = false;
    requeue_assigned(state, worker, now_ms);
}
