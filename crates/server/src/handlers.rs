//! The single request dispatcher shared by every transport.
//!
//! [`handle`] maps one [`Request`] onto the [`MasterState`] methods and produces the
//! [`Response`] that goes back on the wire.  Both the TCP server and the in-process loopback
//! transport funnel through this function, so protocol behaviour cannot diverge between the
//! tested (loopback) and deployed (TCP) paths.

use crate::protocol::{Request, Response};
use crate::state::{CompleteOutcome, MasterState, PullOutcome};

/// Dispatch one request against the master state at the given time.
pub fn handle(state: &mut MasterState, request: Request, now_ms: u64) -> Response {
    match request {
        Request::Register { hostname } => {
            let worker = state.register(hostname, now_ms);
            Response::Registered {
                worker,
                heartbeat_ms: state.config.heartbeat_timeout_ms,
            }
        }
        Request::Heartbeat { worker } => {
            if state.heartbeat(worker, now_ms) {
                Response::Ok
            } else {
                Response::Unregistered
            }
        }
        Request::Pull { worker } => match state.pull(worker, now_ms) {
            PullOutcome::Assigned { job, unit, spec } => Response::Assignment { job, unit, spec },
            PullOutcome::Idle => Response::Idle,
            PullOutcome::Unregistered => Response::Unregistered,
        },
        Request::Complete {
            worker,
            job,
            unit,
            artifact,
        } => match state.complete(worker, job, unit, artifact, now_ms) {
            CompleteOutcome::Accepted | CompleteOutcome::Duplicate => Response::Ok,
            CompleteOutcome::Unknown => Response::Error {
                message: format!("unknown unit {unit} of {job}"),
            },
        },
        Request::FailUnit {
            worker,
            job,
            unit,
            reason,
        } => {
            if state.fail_unit(worker, job, unit, &reason, now_ms) {
                Response::Ok
            } else {
                Response::Error {
                    message: format!("unknown or finished unit {unit} of {job}"),
                }
            }
        }
        Request::Submit { spec } => match state.submit(spec) {
            Ok((job, units)) => Response::Accepted { job, units },
            Err(e) => Response::Error {
                message: format!("rejected spec: {e}"),
            },
        },
        Request::Status { job } => match state.status(job) {
            Some(status) => Response::Status(status),
            None => Response::Error {
                message: format!("unknown job {job}"),
            },
        },
        Request::Fetch { job } => match state.fetch(job) {
            Ok(body) => Response::Artifact { job, body },
            Err(message) => Response::Error { message },
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}
