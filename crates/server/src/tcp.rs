//! Newline-delimited JSON over TCP, using only the standard library.
//!
//! Wire format: one compact JSON object per line in each direction — the same
//! `NdjsonWriter`/`read_ndjson_line` pair the `repro --json` stream uses, and wire-strict
//! (non-finite numbers are rejected at the serializer, never silently nulled on the socket).
//!
//! [`serve`] runs the master accept loop; [`TcpTransport`] is the client side.  A dropped
//! worker connection declares that worker dead immediately (faster than the heartbeat
//! timeout); a silent-but-connected worker is caught by the periodic expiry tick.

use crate::failover::{declare_dead, expire_workers};
use crate::handlers::handle;
use crate::protocol::{Request, Response};
use crate::state::{MasterConfig, MasterState};
use crate::transport::{Transport, TransportError};
use serde::json::{read_ndjson_line, NdjsonWriter};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the server sweeps for expired workers.
const EXPIRY_TICK: Duration = Duration::from_millis(50);

/// A client connection speaking newline-delimited JSON to a master.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: NdjsonWriter<TcpStream>,
}

impl TcpTransport {
    /// Connect to a master.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpTransport {
            reader,
            writer: NdjsonWriter::new(stream),
        })
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, request: &Request) -> Result<Response, TransportError> {
        self.writer.write(&request.to_json())?;
        match read_ndjson_line(&mut self.reader)? {
            Some(value) => {
                Response::from_json(&value).map_err(|e| TransportError::Protocol(e.to_string()))
            }
            None => Err(TransportError::Disconnected(
                "master closed the connection".into(),
            )),
        }
    }
}

/// Shared server context: the state machine plus the epoch all `now_ms` values count from.
struct Server {
    state: Mutex<MasterState>,
    start: Instant,
    shutdown: AtomicBool,
}

impl Server {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// Run a master on an already-bound listener until a `shutdown` request arrives.
///
/// One thread per connection plus a periodic expiry tick; all of them funnel into the same
/// [`handle`] dispatcher the loopback transport uses.
pub fn serve(listener: TcpListener, config: MasterConfig) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let server = Arc::new(Server {
        state: Mutex::new(MasterState::new(config)),
        start: Instant::now(),
        shutdown: AtomicBool::new(false),
    });
    let mut handles = Vec::new();
    while !server.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                handles.push(std::thread::spawn(move || {
                    let _ = handle_connection(&server, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let now = server.now_ms();
                {
                    let mut state = server.state.lock().expect("master state poisoned");
                    expire_workers(&mut state, now);
                }
                std::thread::sleep(EXPIRY_TICK);
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Serve one connection: read a request line, dispatch, write the response line, repeat
/// until EOF.  If the connection carried a worker identity, its disappearance declares the
/// worker dead and requeues its units.
fn handle_connection(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    let local_addr = stream.local_addr()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = NdjsonWriter::new(stream);
    let mut owner = None;
    while let Some(value) = read_ndjson_line(&mut reader)? {
        let request = match Request::from_json(&value) {
            Ok(r) => r,
            Err(e) => {
                writer.write(
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    }
                    .to_json(),
                )?;
                continue;
            }
        };
        // Remember which worker this connection belongs to, so a dropped socket can
        // fail over faster than the heartbeat timeout.
        if let Request::Pull { worker }
        | Request::Heartbeat { worker }
        | Request::Complete { worker, .. }
        | Request::FailUnit { worker, .. } = &request
        {
            owner = Some(*worker);
        }
        // Once shutdown is under way every peer gets told so, which is what lets worker
        // loops drain and `serve` join its connection threads.
        if server.shutdown.load(Ordering::SeqCst) {
            writer.write(&Response::ShuttingDown.to_json())?;
            break;
        }
        let shutting_down = matches!(request, Request::Shutdown);
        let now = server.now_ms();
        let response = {
            let mut state = server.state.lock().expect("master state poisoned");
            let response = handle(&mut state, request, now);
            if let Response::Registered { worker, .. } = &response {
                owner = Some(*worker);
            }
            response
        };
        writer.write(&response.to_json())?;
        if shutting_down {
            server.shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop out of its sleep by connecting once.
            let _ = TcpStream::connect(local_addr);
            break;
        }
    }
    if let Some(worker) = owner {
        let now = server.now_ms();
        let mut state = server.state.lock().expect("master state poisoned");
        declare_dead(&mut state, worker, now);
    }
    Ok(())
}
