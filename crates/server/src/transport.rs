//! Transport abstraction: how a client or worker talks to the master.
//!
//! [`Transport`] is one blocking request/response call.  Two implementations exist:
//!
//! * [`LoopbackTransport`] — fully in-process, backed by a shared [`MasterState`] and a
//!   manually advanced clock.  Every message is still serialized to its wire form and parsed
//!   back, so the loopback path exercises the complete protocol encoding without sockets,
//!   and a [`fail_after`](LoopbackTransport::fail_after) hook lets tests kill a worker
//!   mid-campaign deterministically.
//! * [`TcpTransport`](crate::tcp::TcpTransport) — newline-delimited JSON over a real socket.

use crate::handlers::handle;
use crate::protocol::{Request, Response};
use crate::state::{MasterConfig, MasterState};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why a transport call failed.
#[derive(Debug)]
pub enum TransportError {
    /// The connection is gone (includes injected loopback failures).
    Disconnected(String),
    /// The peer sent something that does not decode as a protocol message.
    Protocol(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected(why) => write!(f, "disconnected: {why}"),
            TransportError::Protocol(why) => write!(f, "protocol error: {why}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// One blocking request/response exchange with the master.
pub trait Transport {
    /// Send a request and wait for the response.
    fn call(&mut self, request: &Request) -> Result<Response, TransportError>;
}

/// An in-process master: shared state plus a manual millisecond clock.
///
/// Cloning is cheap and shares the same master, so a test can hand one transport per
/// simulated worker plus one for the client, all against a single state machine.
#[derive(Clone)]
pub struct LoopbackMaster {
    state: Arc<Mutex<MasterState>>,
    clock: Arc<AtomicU64>,
}

impl LoopbackMaster {
    /// A fresh master with the given configuration, clock at zero.
    pub fn new(config: MasterConfig) -> Self {
        LoopbackMaster {
            state: Arc::new(Mutex::new(MasterState::new(config))),
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current manual time.
    pub fn now_ms(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advance the manual clock and run the worker-expiry sweep, exactly like the TCP
    /// server's periodic tick.
    pub fn advance_ms(&self, delta: u64) {
        let now = self.clock.fetch_add(delta, Ordering::SeqCst) + delta;
        let mut state = self.state.lock().expect("master state poisoned");
        crate::failover::expire_workers(&mut state, now);
    }

    /// A new connection to this master.
    pub fn transport(&self) -> LoopbackTransport {
        LoopbackTransport {
            master: self.clone(),
            remaining_calls: None,
        }
    }

    /// Run a closure against the raw state (for assertions).
    pub fn with_state<R>(&self, f: impl FnOnce(&mut MasterState) -> R) -> R {
        let mut state = self.state.lock().expect("master state poisoned");
        f(&mut state)
    }
}

/// One in-process connection to a [`LoopbackMaster`].
pub struct LoopbackTransport {
    master: LoopbackMaster,
    /// `Some(n)`: the next `n` calls succeed, everything after fails — the fault hook used
    /// to kill a worker mid-campaign.
    remaining_calls: Option<u64>,
}

impl LoopbackTransport {
    /// Let the next `n` calls through, then report the connection dead forever.
    pub fn fail_after(&mut self, n: u64) {
        self.remaining_calls = Some(n);
    }

    /// Kill the connection immediately.
    pub fn kill(&mut self) {
        self.remaining_calls = Some(0);
    }

    /// The master this transport is connected to.
    pub fn master(&self) -> &LoopbackMaster {
        &self.master
    }
}

impl Transport for LoopbackTransport {
    fn call(&mut self, request: &Request) -> Result<Response, TransportError> {
        if let Some(remaining) = &mut self.remaining_calls {
            if *remaining == 0 {
                return Err(TransportError::Disconnected("injected failure".into()));
            }
            *remaining -= 1;
        }
        // Round-trip both messages through their wire encodings so the loopback path proves
        // exactly what the TCP path ships.
        let wire = request
            .to_json()
            .to_wire_string()
            .map_err(|e| TransportError::Protocol(e.to_string()))?;
        let parsed =
            serde::json::parse(&wire).map_err(|e| TransportError::Protocol(e.to_string()))?;
        let request =
            Request::from_json(&parsed).map_err(|e| TransportError::Protocol(e.to_string()))?;
        let now = self.master.now_ms();
        let response = {
            let mut state = self.master.state.lock().expect("master state poisoned");
            handle(&mut state, request, now)
        };
        let wire = response
            .to_json()
            .to_wire_string()
            .map_err(|e| TransportError::Protocol(e.to_string()))?;
        let parsed =
            serde::json::parse(&wire).map_err(|e| TransportError::Protocol(e.to_string()))?;
        Response::from_json(&parsed).map_err(|e| TransportError::Protocol(e.to_string()))
    }
}
