//! # p2pgrid-server — campaign sweep execution as a service
//!
//! A master/worker job service that runs [`CampaignSpec`] sweeps (scenario configuration ×
//! seed range × algorithm set × optional workload) across a fleet of worker processes and
//! merges the per-unit artifacts into one result that is **byte-identical** to a local run
//! of the same spec — regardless of worker count, join order, or workers dying mid-campaign.
//!
//! Three binaries ship with the crate:
//!
//! * `p2pgrid-master` — accepts jobs, decomposes them into run-units, tracks workers.
//! * `p2pgrid-worker` — registers, pulls run-units, executes them through the existing
//!   copy-on-write `Campaign`/`Scenario` machinery, streams artifacts back.
//! * `p2pgrid-submit` — submit a spec, poll status, fetch the merged artifact.
//!
//! ## Architecture
//!
//! ```text
//!   p2pgrid-submit ──┐                      ┌── p2pgrid-worker (UnitRunner)
//!                    │  ndjson over TCP     │
//!                    ├──► p2pgrid-master ◄──┤
//!   (or loopback,    │    MasterState       │
//!    in-process)  ───┘    + failover        └── p2pgrid-worker (UnitRunner)
//! ```
//!
//! Every layer is a separate module with a pure seam for tests:
//!
//! * [`protocol`] — typed requests/responses and their newline-delimited JSON wire codec.
//! * [`state`] — the master's state machine; all methods take `now_ms` explicitly.
//! * [`failover`] — heartbeat expiry and run-unit requeueing with bounded retries.
//! * [`handlers`] — the single `Request → Response` dispatcher shared by all transports.
//! * [`transport`] — the [`Transport`] trait and the in-process [`LoopbackTransport`],
//!   which still round-trips every message through its wire encoding and carries a
//!   fault-injection hook for killing workers mid-campaign.
//! * [`tcp`] — the same protocol over std-library TCP sockets.
//! * [`worker`] / [`client`] — the two peer roles, generic over [`Transport`].
//!
//! ## Determinism
//!
//! The simulation itself is deterministic and the decomposition is canonical (seed-major,
//! unit `index = seed_pos * algorithms + algo_pos`), so the master can merge artifacts in
//! index order no matter which worker produced them or when.  Workers that die mid-unit are
//! detected by heartbeat timeout (or immediately on a dropped TCP connection) and their
//! units requeue with linear backoff under a bounded retry budget, mirroring the
//! simulation's own `RecoveryPolicy::Retry`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod failover;
pub mod handlers;
pub mod protocol;
pub mod state;
pub mod tcp;
pub mod transport;
pub mod worker;

pub use client::Client;
pub use p2pgrid_experiments::rununit::CampaignSpec;
pub use protocol::{JobId, Request, Response, WorkerId};
pub use state::{MasterConfig, MasterState};
pub use transport::{LoopbackMaster, LoopbackTransport, Transport, TransportError};
pub use worker::{Step, Worker};
