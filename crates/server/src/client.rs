//! The submit/poll/fetch client used by `p2pgrid-submit` and the tests.

use crate::protocol::{JobId, JobStatus, Request, Response};
use crate::transport::{Transport, TransportError};
use p2pgrid_experiments::rununit::CampaignSpec;
use serde::json::Value;

/// A campaign client bound to one master connection.
pub struct Client<T: Transport> {
    transport: T,
}

impl<T: Transport> Client<T> {
    /// Wrap a connection.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Submit a campaign; returns the job id and unit count.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<(JobId, usize), TransportError> {
        match self
            .transport
            .call(&Request::Submit { spec: spec.clone() })?
        {
            Response::Accepted { job, units } => Ok((job, units)),
            Response::Error { message } => Err(TransportError::Protocol(message)),
            other => Err(TransportError::Protocol(format!(
                "unexpected response to submit: {other:?}"
            ))),
        }
    }

    /// A job's progress snapshot.
    pub fn status(&mut self, job: JobId) -> Result<JobStatus, TransportError> {
        match self.transport.call(&Request::Status { job })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => Err(TransportError::Protocol(message)),
            other => Err(TransportError::Protocol(format!(
                "unexpected response to status: {other:?}"
            ))),
        }
    }

    /// The merged artifact of a completed job.
    pub fn fetch(&mut self, job: JobId) -> Result<Value, TransportError> {
        match self.transport.call(&Request::Fetch { job })? {
            Response::Artifact { body, .. } => Ok(body),
            Response::Error { message } => Err(TransportError::Protocol(message)),
            other => Err(TransportError::Protocol(format!(
                "unexpected response to fetch: {other:?}"
            ))),
        }
    }

    /// Ask the master to exit.
    pub fn shutdown(&mut self) -> Result<(), TransportError> {
        match self.transport.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(TransportError::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }

    /// Poll until the job leaves `running`, calling `between_polls` after each status (sleep
    /// there, or drive loopback workers).  Errors out if the job failed.
    pub fn wait(
        &mut self,
        job: JobId,
        mut between_polls: impl FnMut(&JobStatus),
    ) -> Result<JobStatus, TransportError> {
        loop {
            let status = self.status(job)?;
            match status.state.as_str() {
                "complete" => return Ok(status),
                "failed" => {
                    return Err(TransportError::Protocol(format!(
                        "{} failed: {}",
                        status.job,
                        status.reason.as_deref().unwrap_or("unknown reason")
                    )))
                }
                _ => between_polls(&status),
            }
        }
    }
}
