//! End-to-end over real sockets: a master on an ephemeral port, two workers (one rigged to
//! die mid-campaign), a submitting client — and the fetched artifact byte-identical to a
//! local run.

use p2pgrid_core::Algorithm;
use p2pgrid_experiments::rununit::{render_result, run_local};
use p2pgrid_experiments::{CampaignSpec, ExperimentScale};
use p2pgrid_server::tcp::{serve, TcpTransport};
use p2pgrid_server::{Client, MasterConfig, Step, Worker};
use std::net::TcpListener;
use std::time::Duration;

fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        name: "tcp-e2e".to_string(),
        scale: ExperimentScale::Smoke,
        seeds: vec![21, 22],
        algorithms: vec![Algorithm::Dsmf, Algorithm::Heft],
        workload: None,
    }
}

fn spawn_worker(
    addr: std::net::SocketAddr,
    name: &str,
    die_after: Option<usize>,
) -> std::thread::JoinHandle<()> {
    let name = name.to_string();
    std::thread::spawn(move || {
        let transport = TcpTransport::connect(addr).expect("worker connects");
        let mut worker = Worker::new(transport, name);
        if let Some(n) = die_after {
            worker = worker.die_after(n);
        }
        loop {
            match worker.step() {
                Ok(Step::Executed { .. }) => {}
                Ok(Step::Idle) => std::thread::sleep(Duration::from_millis(20)),
                Ok(Step::Stopped) => break,
                // Simulated crash: drop the connection without a word, like a real dead
                // process would.
                Err(_) => break,
            }
        }
    })
}

#[test]
fn tcp_master_two_workers_one_killed_yields_local_bytes() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let config = MasterConfig {
        // A dropped connection fails over instantly; the short timeout only covers the
        // silent-stall path and keeps the test fast if that path is ever hit.
        heartbeat_timeout_ms: 1_500,
        retry_budget: 3,
        backoff_ms: 50,
    };
    let server = std::thread::spawn(move || serve(listener, config).expect("serve"));

    let spec = smoke_spec();
    let mut client = Client::new(TcpTransport::connect(addr).expect("client connects"));
    let (job, units) = client.submit(&spec).expect("submit");
    assert_eq!(units, 4);

    // One healthy worker and one that dies right after its first completed unit, while
    // holding a second assignment.
    let healthy = spawn_worker(addr, "healthy", None);
    let doomed = spawn_worker(addr, "doomed", Some(1));

    let status = client
        .wait(job, |_| std::thread::sleep(Duration::from_millis(50)))
        .expect("campaign completes despite the killed worker");
    assert_eq!(status.done, 4);
    let body = client.fetch(job).expect("fetch");
    assert_eq!(
        render_result(&body),
        run_local(&spec).expect("local run"),
        "distributed artifact must be byte-identical to the local run"
    );

    client.shutdown().expect("shutdown");
    doomed.join().expect("doomed worker thread");
    healthy.join().expect("healthy worker thread");
    server.join().expect("server thread");
}
