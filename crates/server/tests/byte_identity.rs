//! The campaign server's headline guarantee: the merged artifact a client fetches from the
//! distributed service is **byte-identical** to a local in-process run of the same spec —
//! for any worker count, any completion interleaving, and even with a worker killed
//! mid-campaign.

use p2pgrid_core::Algorithm;
use p2pgrid_experiments::rununit::{render_result, run_local};
use p2pgrid_experiments::{CampaignSpec, ExperimentScale};
use p2pgrid_server::{
    Client, JobId, LoopbackMaster, LoopbackTransport, MasterConfig, Step, Worker,
};

fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        name: "byte-identity".to_string(),
        scale: ExperimentScale::Smoke,
        seeds: vec![11, 12],
        algorithms: vec![Algorithm::Dsmf, Algorithm::MinMin],
        workload: None,
    }
}

fn test_config() -> MasterConfig {
    MasterConfig {
        heartbeat_timeout_ms: 1_000,
        retry_budget: 3,
        backoff_ms: 100,
    }
}

/// Round-robin the workers until the job completes, advancing the manual clock whenever a
/// whole round makes no progress (idle pulls or dead workers) so heartbeat expiry and retry
/// backoff can fire.  Returns the fetched artifact rendered exactly as `run_local` renders.
fn drive_to_completion(
    master: &LoopbackMaster,
    mut workers: Vec<Worker<LoopbackTransport>>,
    job: JobId,
) -> String {
    let mut client = Client::new(master.transport());
    for _ in 0..10_000 {
        let status = client.status(job).expect("status poll");
        assert_ne!(status.state, "failed", "job must not fail: {status:?}");
        if status.state == "complete" {
            let body = client.fetch(job).expect("fetch merged artifact");
            return render_result(&body);
        }
        let mut progressed = false;
        workers.retain_mut(|w| match w.step() {
            Ok(Step::Executed { .. }) => {
                progressed = true;
                true
            }
            Ok(_) => true,
            // A dead transport means this worker crashed; the master finds out via
            // heartbeat expiry as the clock advances below.
            Err(_) => false,
        });
        if !progressed {
            master.advance_ms(600);
        }
    }
    panic!("job {job} did not complete");
}

fn run_distributed(worker_count: usize, die_after: Option<usize>) -> String {
    let master = LoopbackMaster::new(test_config());
    let mut client = Client::new(master.transport());
    let spec = smoke_spec();
    let (job, units) = client.submit(&spec).expect("submit");
    assert_eq!(units, 4);
    let mut workers: Vec<Worker<LoopbackTransport>> = (0..worker_count)
        .map(|i| Worker::new(master.transport(), format!("w{i}")))
        .collect();
    if let Some(n) = die_after {
        // The *first* worker is rigged to die after n units, while holding an assignment.
        workers[0] = Worker::new(master.transport(), "w0-doomed").die_after(n);
    }
    let rendered = drive_to_completion(&master, workers, job);
    master.with_state(|s| s.assert_invariants());
    rendered
}

#[test]
fn one_worker_matches_local_run() {
    let local = run_local(&smoke_spec()).expect("local run");
    assert_eq!(run_distributed(1, None), local);
}

#[test]
fn worker_counts_two_and_four_are_byte_identical_to_local() {
    let local = run_local(&smoke_spec()).expect("local run");
    assert_eq!(run_distributed(2, None), local, "2 workers");
    assert_eq!(run_distributed(4, None), local, "4 workers");
}

#[test]
fn killed_worker_mid_campaign_still_yields_identical_bytes() {
    let local = run_local(&smoke_spec()).expect("local run");
    // The doomed worker executes one unit, then dies while holding its second assignment;
    // the survivor picks up the requeued unit after expiry.
    assert_eq!(run_distributed(2, Some(1)), local, "kill after 1 unit");
    // Die immediately on the very first assignment.
    assert_eq!(run_distributed(2, Some(0)), local, "kill on first pull");
}

#[test]
fn submitting_twice_yields_two_independent_identical_jobs() {
    let master = LoopbackMaster::new(test_config());
    let mut client = Client::new(master.transport());
    let spec = smoke_spec();
    let (job_a, _) = client.submit(&spec).expect("submit a");
    let (job_b, _) = client.submit(&spec).expect("submit b");
    assert_ne!(job_a, job_b);
    let workers = vec![
        Worker::new(master.transport(), "w0"),
        Worker::new(master.transport(), "w1"),
    ];
    // Driving to completion of the *second* job finishes the first too (jobs are served in
    // submission order), so poll A afterwards.
    let rendered_b = drive_to_completion(&master, workers, job_b);
    let body_a = Client::new(master.transport())
        .fetch(job_a)
        .expect("fetch a");
    assert_eq!(render_result(&body_a), rendered_b);
    assert_eq!(rendered_b, run_local(&spec).expect("local run"));
}
