//! Failover semantics: heartbeat expiry, requeue backoff, retry budgets, and duplicate
//! completions — all driven deterministically through the loopback master's manual clock.

use p2pgrid_core::Algorithm;
use p2pgrid_experiments::{CampaignSpec, ExperimentScale};
use p2pgrid_server::state::{JobState, UnitState};
use p2pgrid_server::{Client, LoopbackMaster, MasterConfig, Request, Response, Transport};

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        name: "failover".to_string(),
        scale: ExperimentScale::Smoke,
        seeds: vec![7],
        algorithms: vec![Algorithm::Dsmf],
        workload: None,
    }
}

fn config() -> MasterConfig {
    MasterConfig {
        heartbeat_timeout_ms: 1_000,
        retry_budget: 2,
        backoff_ms: 100,
    }
}

/// Register a worker and pull the single unit of a freshly submitted tiny job.
fn register_and_pull(master: &LoopbackMaster) -> (p2pgrid_server::WorkerId, p2pgrid_server::JobId) {
    let mut client = Client::new(master.transport());
    let (job, units) = client.submit(&tiny_spec()).expect("submit");
    assert_eq!(units, 1);
    let mut t = master.transport();
    let Ok(Response::Registered { worker, .. }) = t.call(&Request::Register {
        hostname: "doomed".into(),
    }) else {
        panic!("register failed")
    };
    let Ok(Response::Assignment { .. }) = t.call(&Request::Pull { worker }) else {
        panic!("expected an assignment")
    };
    (worker, job)
}

#[test]
fn silent_worker_expires_and_its_unit_requeues_with_backoff() {
    let master = LoopbackMaster::new(config());
    let (worker, job) = register_and_pull(&master);

    // Before the timeout the unit stays assigned.
    master.advance_ms(900);
    master.with_state(|s| {
        assert!(s.workers()[worker.0 as usize].alive);
        assert_eq!(
            s.jobs()[job.0 as usize].units[0].state,
            UnitState::Assigned { worker }
        );
    });

    // Crossing the timeout declares the worker dead and requeues with one backoff step.
    master.advance_ms(200);
    let now = master.now_ms();
    master.with_state(|s| {
        assert!(!s.workers()[worker.0 as usize].alive);
        let unit = &s.jobs()[job.0 as usize].units[0];
        assert_eq!(unit.attempts, 1);
        assert_eq!(
            unit.state,
            UnitState::Pending {
                eligible_at_ms: now + 100
            }
        );
        s.assert_invariants();
    });

    // A fresh worker pulling before the backoff elapses gets nothing; after it, the unit.
    let mut t = master.transport();
    let Ok(Response::Registered { worker: w2, .. }) = t.call(&Request::Register {
        hostname: "rescue".into(),
    }) else {
        panic!("register failed")
    };
    assert!(matches!(
        t.call(&Request::Pull { worker: w2 }),
        Ok(Response::Idle)
    ));
    master.advance_ms(100);
    assert!(matches!(
        t.call(&Request::Pull { worker: w2 }),
        Ok(Response::Assignment { .. })
    ));
}

#[test]
fn exhausting_the_retry_budget_fails_the_job_with_a_reason() {
    let master = LoopbackMaster::new(config());
    let (_, job) = register_and_pull(&master);
    // Lose the unit budget+1 = 3 times: each cycle, expire the holder and hand the unit to
    // a fresh worker that promptly goes silent too.
    for round in 0..2 {
        master.advance_ms(2_000); // expire current holder, pass any backoff
        let mut t = master.transport();
        let Ok(Response::Registered { worker, .. }) = t.call(&Request::Register {
            hostname: format!("casualty-{round}"),
        }) else {
            panic!("register failed")
        };
        master.advance_ms(1_000); // let the backoff elapse
        assert!(
            matches!(
                t.call(&Request::Pull { worker }),
                Ok(Response::Assignment { .. })
            ),
            "round {round} should get the requeued unit"
        );
    }
    master.advance_ms(5_000); // third loss exceeds retry_budget = 2
    master.with_state(|s| {
        assert!(
            matches!(&s.jobs()[job.0 as usize].state, JobState::Failed { reason } if reason.contains("retry budget")),
            "job should be failed, got {:?}",
            s.jobs()[job.0 as usize].state
        );
        s.assert_invariants();
    });
    // Status reports the failure; fetch refuses.
    let mut client = Client::new(master.transport());
    let status = client.status(job).expect("status");
    assert_eq!(status.state, "failed");
    assert!(client.fetch(job).is_err());
}

#[test]
fn dead_worker_must_reregister_and_expiry_requires_registration() {
    let master = LoopbackMaster::new(config());
    let (worker, _) = register_and_pull(&master);
    master.advance_ms(2_000);
    let mut t = master.transport();
    // The expired worker's id is rejected on both heartbeat and pull.
    assert!(matches!(
        t.call(&Request::Heartbeat { worker }),
        Ok(Response::Unregistered)
    ));
    assert!(matches!(
        t.call(&Request::Pull { worker }),
        Ok(Response::Unregistered)
    ));
    // An unknown id is likewise unregistered, not an error.
    assert!(matches!(
        t.call(&Request::Heartbeat {
            worker: p2pgrid_server::WorkerId(99)
        }),
        Ok(Response::Unregistered)
    ));
}

#[test]
fn duplicate_completion_is_idempotent_and_late_completion_from_expired_worker_counts() {
    let master = LoopbackMaster::new(config());
    let (worker, job) = register_and_pull(&master);
    // Worker goes silent long enough to be declared dead; unit requeues.
    master.advance_ms(2_000);
    // ... but its completion still arrives (it was merely slow, not crashed). Determinism
    // makes the artifact identical to any re-execution, so the master accepts it.
    let artifact = {
        let mut runner = p2pgrid_experiments::UnitRunner::new(tiny_spec()).expect("runner");
        let unit = tiny_spec().units()[0];
        runner.run(&unit).expect("unit run")
    };
    let mut t = master.transport();
    let r = t.call(&Request::Complete {
        worker,
        job,
        unit: 0,
        artifact: artifact.clone(),
    });
    assert!(matches!(r, Ok(Response::Ok)));
    // A second copy of the same completion is ignored, not double-counted.
    let r = t.call(&Request::Complete {
        worker,
        job,
        unit: 0,
        artifact,
    });
    assert!(matches!(r, Ok(Response::Ok)));
    let mut client = Client::new(master.transport());
    let status = client.status(job).expect("status");
    assert_eq!(
        (status.done, status.total, status.state.as_str()),
        (1, 1, "complete")
    );
    master.with_state(|s| s.assert_invariants());
}

#[test]
fn loopback_fault_hook_cuts_the_connection_after_n_calls() {
    let master = LoopbackMaster::new(config());
    let mut t = master.transport();
    t.fail_after(1);
    assert!(
        t.call(&Request::Status {
            job: p2pgrid_server::JobId(0)
        })
        .is_ok(),
        "first call passes the fault hook"
    );
    assert!(t.call(&Request::Shutdown).is_err(), "second call must fail");
    let mut dead = master.transport();
    dead.kill();
    assert!(dead.call(&Request::Shutdown).is_err());
}
