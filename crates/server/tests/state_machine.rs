//! Property test for the master state machine: under arbitrary interleavings of worker
//! registration, pulls, completions, deaths and clock advances, no run-unit is ever lost or
//! double-counted, the structural invariants hold after every operation, and the job always
//! drains to completion.
//!
//! The state machine is driven directly (no simulation runs) with placeholder artifacts, so
//! thousands of interleavings are cheap.

use p2pgrid_core::Algorithm;
use p2pgrid_experiments::{CampaignSpec, ExperimentScale};
use p2pgrid_server::failover::{declare_dead, expire_workers};
use p2pgrid_server::state::{CompleteOutcome, JobState, MasterState, PullOutcome};
use p2pgrid_server::{JobId, MasterConfig, WorkerId};
use proptest::prelude::*;
use serde::json;

fn spec(units: usize) -> CampaignSpec {
    // seeds × one algorithm = `units` run-units; the spec is only decomposed, never run.
    CampaignSpec {
        name: "prop".to_string(),
        scale: ExperimentScale::Smoke,
        seeds: (1..=units as u64).collect(),
        algorithms: vec![Algorithm::Dsmf],
        workload: None,
    }
}

fn fake_artifact(unit: usize) -> json::Value {
    json::parse(&format!("{{\"unit\": {unit}}}")).expect("literal artifact parses")
}

/// Deterministic splitmix64, the same generator the serde shim's proptests use.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One worker's view: its id and the unit it currently holds, if any.
struct Sim {
    state: MasterState,
    now_ms: u64,
    workers: Vec<(WorkerId, Option<usize>)>,
    /// Accepted completions per unit — the double-count detector.
    accepted: Vec<u32>,
    job: JobId,
}

impl Sim {
    fn new(units: usize) -> Self {
        let mut state = MasterState::new(MasterConfig {
            heartbeat_timeout_ms: 1_000,
            // Effectively unbounded so arbitrary death sequences cannot fail the job; the
            // bounded-budget path has its own deterministic test.
            retry_budget: 1_000_000,
            backoff_ms: 100,
        });
        let (job, n) = state.submit(spec(units)).expect("valid spec");
        assert_eq!(n, units);
        Sim {
            state,
            now_ms: 0,
            workers: Vec::new(),
            accepted: vec![0; units],
            job,
        }
    }

    fn register(&mut self) {
        let id = self
            .state
            .register(format!("w{}", self.workers.len()), self.now_ms);
        self.workers.push((id, None));
    }

    fn pull(&mut self, slot: usize) {
        let (id, held) = self.workers[slot];
        if held.is_some() {
            return; // one unit at a time per simulated worker
        }
        match self.state.pull(id, self.now_ms) {
            PullOutcome::Assigned { unit, .. } => self.workers[slot].1 = Some(unit.index),
            PullOutcome::Idle => {}
            PullOutcome::Unregistered => {
                // Expired: forget the stale identity; a later Register op replaces it.
                self.workers.remove(slot);
            }
        }
    }

    fn complete(&mut self, slot: usize) {
        let (id, Some(unit)) = self.workers[slot] else {
            return;
        };
        let outcome = self
            .state
            .complete(id, self.job, unit, fake_artifact(unit), self.now_ms);
        if outcome == CompleteOutcome::Accepted {
            self.accepted[unit] += 1;
        }
        self.workers[slot].1 = None;
    }

    fn die(&mut self, slot: usize) {
        let (id, _) = self.workers.remove(slot);
        declare_dead(&mut self.state, id, self.now_ms);
    }

    fn advance(&mut self, delta: u64) {
        self.now_ms += delta;
        let expired: Vec<WorkerId> = expire_workers(&mut self.state, self.now_ms);
        // Drop simulated workers the master no longer believes in.
        self.workers.retain(|(id, _)| !expired.contains(id));
    }

    fn check(&self) {
        self.state.assert_invariants();
        for (unit, &count) in self.accepted.iter().enumerate() {
            assert!(count <= 1, "unit {unit} double-counted ({count} accepts)");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn no_unit_is_lost_or_double_counted(seed in 0u64..1_000_000) {
        let mut rng = Mix(seed);
        let units = 2 + (rng.below(4) as usize); // 2..=5 units
        let mut sim = Sim::new(units);
        sim.register();

        for _ in 0..60 {
            let roll = rng.below(100);
            if roll < 15 {
                sim.register();
            } else if roll < 50 {
                let slot = rng.below(sim.workers.len().max(1) as u64) as usize;
                if slot < sim.workers.len() {
                    sim.pull(slot);
                }
            } else if roll < 75 {
                let slot = rng.below(sim.workers.len().max(1) as u64) as usize;
                if slot < sim.workers.len() {
                    sim.complete(slot);
                }
            } else if roll < 85 {
                if !sim.workers.is_empty() {
                    let slot = rng.below(sim.workers.len() as u64) as usize;
                    sim.die(slot);
                }
            } else {
                sim.advance(rng.below(1_500));
            }
            sim.check();
        }

        // Drain: one fresh, diligent worker finishes whatever is left.
        sim.advance(5_000); // expire every straggler so held units requeue
        sim.register();
        let slot = sim.workers.len() - 1;
        let mut spins = 0;
        while !matches!(sim.state.jobs()[0].state, JobState::Complete) {
            sim.pull(slot);
            sim.complete(slot);
            sim.advance(200); // outlast any retry backoff
            sim.check();
            spins += 1;
            prop_assert!(spins < 10_000, "job failed to drain: a unit was lost");
        }
        for (unit, &count) in sim.accepted.iter().enumerate() {
            prop_assert_eq!(count, 1, "unit {} completed {} times", unit, count);
        }
    }
}
