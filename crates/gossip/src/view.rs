//! Newscast-style random peer sampling.
//!
//! The paper selects each node's gossip neighbours "randomly ... at every propagation cycle
//! based on the Newscast model" with a fan-out of `log2(n)`.  Newscast maintains a small
//! partial view of `(peer, timestamp)` descriptors per node; on every cycle a node exchanges
//! views with one random peer from its view, merges the two views and keeps the freshest
//! entries.  The result is a continually reshuffled overlay whose views approximate uniform
//! random samples of the live population — exactly what both the epidemic and aggregation
//! protocols need.

use crate::state::PeerId;
use p2pgrid_sim::{SimRng, SimTime};

/// One node's Newscast partial view.
#[derive(Debug, Clone)]
pub struct NewscastView {
    owner: PeerId,
    entries: Vec<(PeerId, SimTime)>,
    size: usize,
}

impl NewscastView {
    /// Create a view of at most `size` descriptors for node `owner`.
    pub fn new(owner: PeerId, size: usize) -> Self {
        NewscastView {
            owner,
            entries: Vec::with_capacity(size),
            size: size.max(1),
        }
    }

    /// The node owning this view.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// Maximum number of descriptors kept.
    pub fn size_limit(&self) -> usize {
        self.size
    }

    /// The peers currently in the view (excluding the owner).
    pub fn peers(&self) -> Vec<PeerId> {
        self.entries.iter().map(|&(p, _)| p).collect()
    }

    /// Number of descriptors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or refresh a descriptor, keeping only the freshest `size` entries.
    pub fn insert(&mut self, peer: PeerId, timestamp: SimTime) {
        if peer == self.owner {
            return;
        }
        match self.entries.iter_mut().find(|(p, _)| *p == peer) {
            Some(entry) => {
                if timestamp > entry.1 {
                    entry.1 = timestamp;
                }
            }
            None => self.entries.push((peer, timestamp)),
        }
        if self.entries.len() > self.size {
            // Keep the freshest descriptors.
            self.entries
                .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            self.entries.truncate(self.size);
        }
    }

    /// Drop every descriptor for which `departed` returns true.
    pub fn retain_alive(&mut self, departed: &dyn Fn(PeerId) -> bool) {
        self.entries.retain(|&(p, _)| !departed(p));
    }

    /// Pick one uniformly random peer from the view.
    pub fn random_peer(&self, rng: &mut SimRng) -> Option<PeerId> {
        rng.choose(&self.entries).map(|&(p, _)| p)
    }

    /// Pick up to `count` distinct random peers from the view.
    pub fn random_peers(&self, count: usize, rng: &mut SimRng) -> Vec<PeerId> {
        rng.choose_multiple(&self.entries, count)
            .into_iter()
            .map(|&(p, _)| p)
            .collect()
    }

    /// Perform the Newscast exchange between two views: each side learns the other's entries
    /// (plus a fresh descriptor of the counterpart itself) and keeps its freshest `size`.
    pub fn exchange(a: &mut NewscastView, b: &mut NewscastView, now: SimTime) {
        let a_entries = a.entries.clone();
        let b_entries = b.entries.clone();
        for (p, t) in b_entries {
            a.insert(p, t);
        }
        a.insert(b.owner, now);
        for (p, t) in a_entries {
            b.insert(p, t);
        }
        b.insert(a.owner, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_ignores_self_and_respects_bound() {
        let mut v = NewscastView::new(0, 3);
        v.insert(0, SimTime::from_secs(1));
        assert!(v.is_empty(), "a view never contains its owner");
        for i in 1..=5 {
            v.insert(i, SimTime::from_secs(i as u64));
        }
        assert_eq!(v.len(), 3);
        let peers = v.peers();
        // The freshest three (3, 4, 5) survive.
        assert!(peers.contains(&3) && peers.contains(&4) && peers.contains(&5));
    }

    #[test]
    fn insert_refreshes_timestamp_without_duplicating() {
        let mut v = NewscastView::new(0, 4);
        v.insert(1, SimTime::from_secs(1));
        v.insert(1, SimTime::from_secs(9));
        v.insert(1, SimTime::from_secs(5));
        assert_eq!(v.len(), 1);
        assert_eq!(v.entries[0].1, SimTime::from_secs(9));
    }

    #[test]
    fn exchange_spreads_descriptors_both_ways() {
        let mut a = NewscastView::new(0, 8);
        let mut b = NewscastView::new(1, 8);
        a.insert(2, SimTime::from_secs(1));
        b.insert(3, SimTime::from_secs(2));
        NewscastView::exchange(&mut a, &mut b, SimTime::from_secs(10));
        assert!(a.peers().contains(&3));
        assert!(
            a.peers().contains(&1),
            "a learns a fresh descriptor of b itself"
        );
        assert!(b.peers().contains(&2));
        assert!(b.peers().contains(&0));
    }

    #[test]
    fn retain_alive_drops_departed_peers() {
        let mut v = NewscastView::new(0, 8);
        for i in 1..=6 {
            v.insert(i, SimTime::from_secs(1));
        }
        v.retain_alive(&|p| p % 2 == 0);
        let peers = v.peers();
        assert!(peers.iter().all(|p| p % 2 == 1));
        assert_eq!(peers.len(), 3);
    }

    #[test]
    fn random_selection_comes_from_view() {
        let mut v = NewscastView::new(0, 8);
        for i in 1..=6 {
            v.insert(i, SimTime::from_secs(1));
        }
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = v.random_peer(&mut rng).unwrap();
            assert!((1..=6).contains(&p));
        }
        let many = v.random_peers(4, &mut rng);
        assert_eq!(many.len(), 4);
        let empty = NewscastView::new(9, 4);
        assert!(empty.random_peer(&mut rng).is_none());
        assert!(empty.random_peers(3, &mut rng).is_empty());
    }
}
