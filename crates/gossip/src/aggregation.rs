//! Aggregation gossip (push–pull averaging).
//!
//! Jelasity et al.'s averaging protocol: every cycle each alive node contacts one random alive
//! peer and both replace their current estimates by the pair's mean.  The estimates converge
//! exponentially fast to the global average of the nodes' local values.  The paper uses this
//! protocol to give every node the **system-wide average node capacity** and **average
//! bandwidth**, which feed all expected-time estimates (`eet`, `ett`, RPM, `eft`).
//!
//! To track values that drift over time (node churn changes the true averages) the protocol is
//! restarted in epochs: every `restart_every` cycles each node re-seeds its estimate from its
//! current local value, as in the original paper's periodic restart mechanism.  Consumers never
//! see the freshly re-seeded values, though: at each restart the converged estimates of the
//! finished epoch are snapshotted, and [`AggregationGossip::estimate`] reports that snapshot
//! while the new epoch converges in the background — so scheduling decisions taken right after
//! a restart are as well informed as ones taken at the end of an epoch.

use crate::state::PeerId;
use crate::view::NewscastView;
use p2pgrid_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Configuration of the aggregation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationConfig {
    /// Number of cycles per epoch; estimates are re-seeded from local values at epoch start.
    pub restart_every: u32,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig { restart_every: 12 }
    }
}

/// Push–pull averaging state for one metric across all nodes.
#[derive(Debug, Clone)]
pub struct AggregationGossip {
    config: AggregationConfig,
    estimates: Vec<f64>,
    initialized: Vec<bool>,
    /// Converged estimates snapshotted at the last epoch restart (reported to consumers).
    reported: Vec<f64>,
    has_report: Vec<bool>,
    cycle: u32,
    exchanges: u64,
}

impl AggregationGossip {
    /// Create the protocol state for `n` nodes.
    pub fn new(n: usize, config: AggregationConfig) -> Self {
        AggregationGossip {
            config,
            estimates: vec![0.0; n],
            initialized: vec![false; n],
            reported: vec![0.0; n],
            has_report: vec![false; n],
            cycle: 0,
            exchanges: 0,
        }
    }

    /// The estimate `node` currently reports: the converged value of the last finished epoch,
    /// or the in-progress estimate while the first epoch is still running.
    ///
    /// Before the first cycle (or right after a node joins) this is the node's own local value.
    pub fn estimate(&self, node: PeerId) -> f64 {
        if self.has_report[node] {
            self.reported[node]
        } else {
            self.estimates[node]
        }
    }

    /// Number of pairwise exchanges performed so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The exact average of the alive nodes' local values (ground truth, for tests and
    /// convergence metrics).
    pub fn true_mean(local: &[Option<f64>]) -> f64 {
        let vals: Vec<f64> = local.iter().flatten().copied().collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Mean absolute relative error of the alive nodes' estimates against the true mean.
    pub fn mean_relative_error(&self, local: &[Option<f64>]) -> f64 {
        let truth = Self::true_mean(local);
        if truth == 0.0 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut cnt = 0u32;
        for (i, v) in local.iter().enumerate() {
            if v.is_some() {
                sum += (self.estimate(i) - truth).abs() / truth.abs();
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }

    /// Run one push–pull averaging cycle.
    ///
    /// `local[i]` is the node's current local value (`None` for departed nodes) and `views[i]`
    /// supplies peer candidates; nodes with empty views fall back to a uniformly random alive
    /// peer so that bootstrap and churn cannot stall convergence.
    pub fn run_cycle(&mut self, local: &[Option<f64>], views: &[NewscastView], rng: &mut SimRng) {
        let n = self.estimates.len();
        assert_eq!(local.len(), n);
        assert_eq!(views.len(), n);

        let alive: Vec<PeerId> = (0..n).filter(|&i| local[i].is_some()).collect();
        if alive.is_empty() {
            self.cycle += 1;
            return;
        }

        // Epoch restart / (re-)initialisation from local values.  The finished epoch's
        // converged estimates become the reported snapshot before they are re-seeded.
        let restart = self.cycle.is_multiple_of(self.config.restart_every);
        if restart && self.cycle > 0 {
            for &i in &alive {
                if self.initialized[i] {
                    self.reported[i] = self.estimates[i];
                    self.has_report[i] = true;
                }
            }
        }
        for &i in &alive {
            if restart || !self.initialized[i] {
                self.estimates[i] = local[i].expect("alive");
                self.initialized[i] = true;
            }
        }
        for (i, v) in local.iter().enumerate() {
            if v.is_none() {
                self.initialized[i] = false;
                self.has_report[i] = false;
            }
        }

        // Push-pull exchanges.
        for &i in &alive {
            let peer = views[i]
                .random_peer(rng)
                .filter(|&p| p != i && local[p].is_some())
                .or_else(|| {
                    let candidates: Vec<PeerId> =
                        alive.iter().copied().filter(|&p| p != i).collect();
                    rng.choose(&candidates).copied()
                });
            if let Some(p) = peer {
                let mean = (self.estimates[i] + self.estimates[p]) / 2.0;
                self.estimates[i] = mean;
                self.estimates[p] = mean;
                self.exchanges += 1;
            }
        }
        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pgrid_sim::SimTime;

    fn full_views(n: usize) -> Vec<NewscastView> {
        (0..n)
            .map(|i| {
                let mut v = NewscastView::new(i, n);
                for p in 0..n {
                    if p != i {
                        v.insert(p, SimTime::ZERO);
                    }
                }
                v
            })
            .collect()
    }

    #[test]
    fn true_mean_ignores_departed_nodes() {
        let local = vec![Some(2.0), None, Some(4.0), Some(6.0)];
        assert_eq!(AggregationGossip::true_mean(&local), 4.0);
        assert_eq!(AggregationGossip::true_mean(&[None, None]), 0.0);
    }

    #[test]
    fn estimates_converge_exponentially_to_the_mean() {
        let n = 100;
        let local: Vec<Option<f64>> = (0..n).map(|i| Some((i % 16 + 1) as f64)).collect();
        let views = full_views(n);
        let mut agg = AggregationGossip::new(
            n,
            AggregationConfig {
                restart_every: 1000,
            },
        );
        let mut rng = SimRng::seed_from_u64(1);
        agg.run_cycle(&local, &views, &mut rng);
        let err_after_1 = agg.mean_relative_error(&local);
        for _ in 0..14 {
            agg.run_cycle(&local, &views, &mut rng);
        }
        let err_after_15 = agg.mean_relative_error(&local);
        assert!(
            err_after_15 < err_after_1 / 10.0,
            "convergence too slow: {err_after_1} -> {err_after_15}"
        );
        assert!(
            err_after_15 < 0.02,
            "estimates should be within 2% after 15 cycles"
        );
    }

    #[test]
    fn averaging_preserves_the_total_mass() {
        // Push-pull averaging conserves the sum of estimates within an epoch, which is the
        // mechanism behind its correctness.
        let n = 32;
        let local: Vec<Option<f64>> = (0..n).map(|i| Some(i as f64)).collect();
        let views = full_views(n);
        let mut agg = AggregationGossip::new(
            n,
            AggregationConfig {
                restart_every: 1000,
            },
        );
        let mut rng = SimRng::seed_from_u64(2);
        agg.run_cycle(&local, &views, &mut rng);
        let sum_after_first: f64 = (0..n).map(|i| agg.estimate(i)).sum();
        for _ in 0..10 {
            agg.run_cycle(&local, &views, &mut rng);
        }
        let sum_after_many: f64 = (0..n).map(|i| agg.estimate(i)).sum();
        assert!((sum_after_first - sum_after_many).abs() < 1e-6);
    }

    #[test]
    fn epoch_restart_tracks_changing_local_values() {
        let n = 50;
        let views = full_views(n);
        let mut agg = AggregationGossip::new(n, AggregationConfig { restart_every: 8 });
        let mut rng = SimRng::seed_from_u64(3);
        let local_a: Vec<Option<f64>> = (0..n).map(|_| Some(10.0)).collect();
        for _ in 0..16 {
            agg.run_cycle(&local_a, &views, &mut rng);
        }
        assert!((agg.estimate(0) - 10.0).abs() < 1e-9);
        // The system-wide truth drops to 5.0; after a couple of epochs the estimates follow.
        let local_b: Vec<Option<f64>> = (0..n).map(|_| Some(5.0)).collect();
        for _ in 0..24 {
            agg.run_cycle(&local_b, &views, &mut rng);
        }
        assert!(
            (agg.estimate(0) - 5.0).abs() < 0.5,
            "estimate {} did not track the new mean",
            agg.estimate(0)
        );
    }

    #[test]
    fn restart_reports_the_finished_epochs_converged_estimate() {
        let n = 64;
        let views = full_views(n);
        let mut agg = AggregationGossip::new(n, AggregationConfig { restart_every: 8 });
        let mut rng = SimRng::seed_from_u64(9);
        let local: Vec<Option<f64>> = (0..n).map(|i| Some((i % 16 + 1) as f64)).collect();
        // Run exactly one cycle past a restart: the raw estimates were just re-seeded from
        // wildly spread local values, but the *reported* estimates must still be the previous
        // epoch's converged values.
        for _ in 0..9 {
            agg.run_cycle(&local, &views, &mut rng);
        }
        let err = agg.mean_relative_error(&local);
        assert!(
            err < 0.05,
            "reported estimates right after a restart should stay converged, error {err}"
        );
    }

    #[test]
    fn churned_nodes_are_excluded_from_the_average() {
        let n = 40;
        let views = full_views(n);
        let mut agg = AggregationGossip::new(n, AggregationConfig { restart_every: 4 });
        let mut rng = SimRng::seed_from_u64(4);
        // Half the nodes have capacity 2, half 8; full population mean = 5.
        let mut local: Vec<Option<f64>> = (0..n)
            .map(|i| Some(if i % 2 == 0 { 2.0 } else { 8.0 }))
            .collect();
        for _ in 0..12 {
            agg.run_cycle(&local, &views, &mut rng);
        }
        // All the capacity-8 nodes leave; the mean of the survivors is 2.
        for (i, v) in local.iter_mut().enumerate() {
            if i % 2 == 1 {
                *v = None;
            }
        }
        for _ in 0..24 {
            agg.run_cycle(&local, &views, &mut rng);
        }
        let err = agg.mean_relative_error(&local);
        assert!(
            err < 0.05,
            "survivor estimates should re-converge, error {err}"
        );
    }

    #[test]
    fn joining_node_adopts_its_local_value_then_blends_in() {
        let n = 10;
        let views = full_views(n);
        let mut agg = AggregationGossip::new(n, AggregationConfig::default());
        let mut rng = SimRng::seed_from_u64(5);
        let mut local: Vec<Option<f64>> = (0..n).map(|_| Some(4.0)).collect();
        local[7] = None;
        agg.run_cycle(&local, &views, &mut rng);
        // Node 7 joins with a very different local value.
        local[7] = Some(400.0);
        agg.run_cycle(&local, &views, &mut rng);
        assert!(
            agg.estimate(7) > 4.0,
            "joining node must start from its local value"
        );
        assert!(agg.exchanges() > 0);
    }
}
