//! Per-node state records and the bounded resource state set `RSS`.

use p2pgrid_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a peer node (dense index, shared with `p2pgrid-topology`).
pub type PeerId = usize;

/// A gossiped record describing one resource node's state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStateRecord {
    /// The node this record describes.
    pub node: PeerId,
    /// Its *aggregate* computing capacity in MIPS: all execution slots combined.  With the
    /// paper's single CPU this is exactly the node's Table I capacity.
    pub capacity_mips: f64,
    /// Number of execution slots behind that aggregate (paper: 1).  A scheduler must divide
    /// `capacity_mips` by this to obtain the rate one task actually runs at — a 16-slot node
    /// drains its *queue* 16× faster, but runs a *single* task no faster than one slot.
    pub slots: usize,
    /// Total load (running + waiting tasks) in MI, `l_r` in the paper.
    pub total_load_mi: f64,
    /// Virtual time at which the record was produced by its origin node.
    pub updated_at: SimTime,
    /// Number of gossip hops this record has already travelled.
    pub hops: u32,
}

impl NodeStateRecord {
    /// The queuing-delay estimate the paper derives from this record: `l_r / c_r` seconds.
    /// The backlog drains on all slots at once, so this correctly uses the aggregate capacity.
    pub fn queuing_delay_secs(&self) -> f64 {
        if self.capacity_mips <= 0.0 {
            f64::INFINITY
        } else {
            self.total_load_mi / self.capacity_mips
        }
    }

    /// The execution rate of *one* slot in MIPS — what a single task runs at.
    pub fn per_slot_capacity_mips(&self) -> f64 {
        self.capacity_mips / self.slots.max(1) as f64
    }
}

/// The bounded set of resource-state records a node has aggregated, `RSS(p_i)` in the paper.
///
/// The set keeps at most `capacity` records (the freshest ones win) and purges records older
/// than the configured staleness limit, which together keep the per-node space complexity at
/// `O(log n)` as claimed in Section III and measured in Fig. 11(a).
///
/// Records are stored in a `BTreeMap`, so iteration is *always* in ascending node-id order —
/// the deterministic order scheduling decisions need.  The schedulers read the set every
/// scheduling cycle, so keeping it sorted incrementally (`O(log n)` per merge over the ~log n
/// records) beats the old clone-and-sort on every read.
#[derive(Debug, Clone)]
pub struct ResourceStateSet {
    records: BTreeMap<PeerId, NodeStateRecord>,
    capacity: usize,
}

impl ResourceStateSet {
    /// Create an empty set bounded to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        ResourceStateSet {
            records: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for `node`, if known.
    pub fn get(&self, node: PeerId) -> Option<&NodeStateRecord> {
        self.records.get(&node)
    }

    /// Iterate over all known records, always in ascending node-id order.
    pub fn records(&self) -> impl Iterator<Item = &NodeStateRecord> {
        self.records.values()
    }

    /// Known records sorted by node id (deterministic order for scheduling decisions).
    ///
    /// The map maintains this order incrementally, so this is a plain copy — no per-call
    /// re-sort.  Prefer [`ResourceStateSet::records`] when borrowing suffices.
    pub fn records_sorted(&self) -> Vec<NodeStateRecord> {
        self.records.values().copied().collect()
    }

    /// Insert or refresh a record.  A record only replaces an existing one for the same node if
    /// it is strictly fresher.  Returns `true` if the set changed.
    pub fn merge(&mut self, record: NodeStateRecord) -> bool {
        match self.records.get(&record.node) {
            Some(existing) if existing.updated_at >= record.updated_at => false,
            _ => {
                self.records.insert(record.node, record);
                self.enforce_capacity();
                true
            }
        }
    }

    /// Remove every record older than `limit` relative to `now`, and any record describing a
    /// node in `departed`.
    pub fn purge(&mut self, now: SimTime, limit: SimDuration, departed: &dyn Fn(PeerId) -> bool) {
        self.records.retain(|&node, r| {
            !departed(node) && now.saturating_duration_since(r.updated_at) <= limit
        });
    }

    /// Remove the record for a specific node (e.g. observed to have churned away).
    pub fn remove(&mut self, node: PeerId) {
        self.records.remove(&node);
    }

    fn enforce_capacity(&mut self) {
        while self.records.len() > self.capacity {
            // Evict the stalest record; ties broken by node id for determinism.
            let victim = self
                .records
                .values()
                .min_by_key(|r| (r.updated_at, r.node))
                .map(|r| r.node)
                .expect("set is non-empty");
            self.records.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: PeerId, t: u64) -> NodeStateRecord {
        NodeStateRecord {
            node,
            capacity_mips: 4.0,
            slots: 1,
            total_load_mi: 100.0,
            updated_at: SimTime::from_secs(t),
            hops: 0,
        }
    }

    #[test]
    fn queuing_delay_is_load_over_capacity() {
        assert_eq!(rec(0, 0).queuing_delay_secs(), 25.0);
        let zero_cap = NodeStateRecord {
            capacity_mips: 0.0,
            ..rec(0, 0)
        };
        assert_eq!(zero_cap.queuing_delay_secs(), f64::INFINITY);
    }

    #[test]
    fn per_slot_capacity_divides_the_aggregate() {
        // A 4-slot node advertising 4 MIPS aggregate runs one task at 1 MIPS, but still drains
        // its 100 MI backlog in 25 s.
        let quad = NodeStateRecord {
            slots: 4,
            ..rec(0, 0)
        };
        assert_eq!(quad.per_slot_capacity_mips(), 1.0);
        assert_eq!(quad.queuing_delay_secs(), 25.0);
        assert_eq!(rec(0, 0).per_slot_capacity_mips(), 4.0);
    }

    #[test]
    fn merge_prefers_fresher_records() {
        let mut rss = ResourceStateSet::new(10);
        assert!(rss.merge(rec(1, 10)));
        assert!(!rss.merge(rec(1, 5)), "stale record must not overwrite");
        assert!(
            !rss.merge(rec(1, 10)),
            "equal freshness must not count as a change"
        );
        assert!(rss.merge(rec(1, 20)));
        assert_eq!(rss.get(1).unwrap().updated_at, SimTime::from_secs(20));
        assert_eq!(rss.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_stalest() {
        let mut rss = ResourceStateSet::new(3);
        rss.merge(rec(1, 10));
        rss.merge(rec(2, 20));
        rss.merge(rec(3, 30));
        rss.merge(rec(4, 40));
        assert_eq!(rss.len(), 3);
        assert!(rss.get(1).is_none(), "the stalest record must be evicted");
        assert!(rss.get(4).is_some());
    }

    #[test]
    fn purge_removes_stale_and_departed() {
        let mut rss = ResourceStateSet::new(10);
        rss.merge(rec(1, 100));
        rss.merge(rec(2, 500));
        rss.merge(rec(3, 900));
        rss.purge(
            SimTime::from_secs(1000),
            SimDuration::from_secs(600),
            &|n| n == 3,
        );
        assert!(rss.get(1).is_none(), "older than the staleness limit");
        assert!(rss.get(2).is_some());
        assert!(rss.get(3).is_none(), "departed node");
    }

    #[test]
    fn sorted_records_are_deterministic() {
        let mut rss = ResourceStateSet::new(10);
        rss.merge(rec(5, 1));
        rss.merge(rec(2, 2));
        rss.merge(rec(9, 3));
        let order: Vec<PeerId> = rss.records_sorted().iter().map(|r| r.node).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn iteration_order_stays_sorted_under_merges_evictions_and_purges() {
        // The sorted order is maintained incrementally, so *every* read path — records(),
        // records_sorted(), after merges, capacity evictions and purges — must observe
        // ascending node ids.
        let mut rss = ResourceStateSet::new(4);
        for (node, t) in [(7, 10), (1, 20), (9, 30), (4, 40), (3, 50), (8, 60)] {
            rss.merge(rec(node, t));
            let via_iter: Vec<PeerId> = rss.records().map(|r| r.node).collect();
            let mut expected = via_iter.clone();
            expected.sort_unstable();
            assert_eq!(
                via_iter, expected,
                "records() out of order after merging {node}"
            );
            assert_eq!(
                rss.records_sorted()
                    .iter()
                    .map(|r| r.node)
                    .collect::<Vec<_>>(),
                via_iter,
                "records_sorted() disagrees with records()"
            );
        }
        assert_eq!(rss.len(), 4, "capacity bound respected");
        rss.purge(SimTime::from_secs(100), SimDuration::from_secs(55), &|n| {
            n == 9
        });
        let after: Vec<PeerId> = rss.records().map(|r| r.node).collect();
        let mut expected = after.clone();
        expected.sort_unstable();
        assert_eq!(after, expected);
        assert!(!after.contains(&9));
    }

    #[test]
    fn remove_and_empty() {
        let mut rss = ResourceStateSet::new(2);
        assert!(rss.is_empty());
        rss.merge(rec(1, 1));
        rss.remove(1);
        assert!(rss.is_empty());
        assert_eq!(rss.capacity(), 2);
    }
}
