//! Epidemic (push) gossip of per-node state records.
//!
//! Every gossip cycle each alive node refreshes its own record and pushes the records it knows
//! to `fanout` random neighbours drawn from its Newscast view.  Records carry a hop counter and
//! stop being forwarded once they have travelled `ttl` hops (four in the paper), which bounds
//! the flooding radius while still spreading state to `O(n)` nodes in `O(log n)` cycles.

use crate::state::{NodeStateRecord, PeerId, ResourceStateSet};
use crate::view::NewscastView;
use p2pgrid_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the epidemic gossip protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpidemicConfig {
    /// Number of neighbours each node pushes to per cycle (`log2 n` in the paper).
    pub fanout: usize,
    /// Maximum number of hops a record may travel (paper: 4).
    pub ttl: u32,
    /// Maximum number of records each node retains in its `RSS`.
    pub rss_capacity: usize,
    /// Records older than this are purged from the `RSS`.
    pub staleness_limit: SimDuration,
}

impl Default for EpidemicConfig {
    fn default() -> Self {
        EpidemicConfig {
            fanout: 8,
            ttl: 4,
            rss_capacity: 32,
            staleness_limit: SimDuration::from_mins(30),
        }
    }
}

/// The local ground truth a node advertises in the current cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalAdvertisement {
    /// Aggregate node capacity in MIPS (all execution slots combined).
    pub capacity_mips: f64,
    /// Number of execution slots behind that aggregate (paper: 1).
    pub slots: usize,
    /// Current total load (running + ready tasks) in MI.
    pub total_load_mi: f64,
}

/// The epidemic gossip protocol state for all nodes.
#[derive(Debug, Clone)]
pub struct EpidemicGossip {
    config: EpidemicConfig,
    rss: Vec<ResourceStateSet>,
    messages_sent: u64,
    records_sent: u64,
}

impl EpidemicGossip {
    /// Create protocol state for `n` nodes.
    pub fn new(n: usize, config: EpidemicConfig) -> Self {
        EpidemicGossip {
            config,
            rss: (0..n)
                .map(|_| ResourceStateSet::new(config.rss_capacity))
                .collect(),
            messages_sent: 0,
            records_sent: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EpidemicConfig {
        &self.config
    }

    /// The resource state set currently held by `node`.
    pub fn rss(&self, node: PeerId) -> &ResourceStateSet {
        &self.rss[node]
    }

    /// Total push messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total records carried inside those messages.
    pub fn records_sent(&self) -> u64 {
        self.records_sent
    }

    /// Drop all records describing `node` from every `RSS` (used when a node departs).
    pub fn forget_node(&mut self, node: PeerId) {
        for rss in &mut self.rss {
            rss.remove(node);
        }
        self.rss[node] = ResourceStateSet::new(self.config.rss_capacity);
    }

    /// Run one push cycle.
    ///
    /// `local[i]` is `Some` for alive nodes and `None` for departed ones; `views[i]` supplies
    /// the gossip neighbours.
    pub fn run_cycle(
        &mut self,
        now: SimTime,
        local: &[Option<LocalAdvertisement>],
        views: &[NewscastView],
        rng: &mut SimRng,
    ) {
        let n = self.rss.len();
        assert_eq!(local.len(), n);
        assert_eq!(views.len(), n);

        // 1. Every alive node refreshes its own record.
        for (i, adv) in local.iter().enumerate() {
            if let Some(adv) = adv {
                self.rss[i].merge(NodeStateRecord {
                    node: i,
                    capacity_mips: adv.capacity_mips,
                    slots: adv.slots,
                    total_load_mi: adv.total_load_mi,
                    updated_at: now,
                    hops: 0,
                });
            }
        }

        // 2. Gather push messages (dst, record-with-incremented-hops), then apply them, so the
        //    cycle is synchronous and borrow-friendly.
        let mut deliveries: Vec<(PeerId, NodeStateRecord)> = Vec::new();
        for (i, adv) in local.iter().enumerate() {
            if adv.is_none() {
                continue;
            }
            let mut targets = views[i].random_peers(self.config.fanout, rng);
            targets.retain(|&t| t != i && local[t].is_some());
            if targets.is_empty() {
                continue;
            }
            let outgoing: Vec<NodeStateRecord> = self.rss[i]
                .records()
                .filter(|r| r.hops < self.config.ttl)
                .copied()
                .collect();
            if outgoing.is_empty() {
                continue;
            }
            for &t in &targets {
                self.messages_sent += 1;
                self.records_sent += outgoing.len() as u64;
                for r in &outgoing {
                    deliveries.push((
                        t,
                        NodeStateRecord {
                            hops: r.hops + 1,
                            ..*r
                        },
                    ));
                }
            }
        }
        for (dst, rec) in deliveries {
            self.rss[dst].merge(rec);
        }

        // 3. Purge stale records and records of departed nodes.
        let limit = self.config.staleness_limit;
        for (i, rss) in self.rss.iter_mut().enumerate() {
            if local[i].is_some() {
                rss.purge(now, limit, &|p| local[p].is_none());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_views(n: usize, size: usize) -> Vec<NewscastView> {
        (0..n)
            .map(|i| {
                let mut v = NewscastView::new(i, size);
                for p in 0..n {
                    if p != i {
                        v.insert(p, SimTime::ZERO);
                    }
                }
                v
            })
            .collect()
    }

    fn alive(n: usize) -> Vec<Option<LocalAdvertisement>> {
        (0..n)
            .map(|i| {
                Some(LocalAdvertisement {
                    capacity_mips: 1.0 + i as f64,
                    slots: 1,
                    total_load_mi: 10.0 * i as f64,
                })
            })
            .collect()
    }

    #[test]
    fn state_spreads_in_logarithmic_cycles() {
        let n = 64;
        let cfg = EpidemicConfig {
            fanout: 6,
            rss_capacity: n,
            ..EpidemicConfig::default()
        };
        let mut gossip = EpidemicGossip::new(n, cfg);
        let views = full_views(n, n);
        let local = alive(n);
        let mut rng = SimRng::seed_from_u64(1);
        for cycle in 0..8 {
            gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &views, &mut rng);
        }
        // After ~log2(n) cycles most nodes should know a healthy number of peers.
        let avg_known: f64 = (0..n).map(|i| gossip.rss(i).len() as f64).sum::<f64>() / n as f64;
        assert!(
            avg_known >= 16.0,
            "epidemic spread too slow: average RSS size {avg_known}"
        );
    }

    #[test]
    fn rss_size_stays_bounded_by_capacity() {
        let n = 128;
        let cfg = EpidemicConfig {
            fanout: 7,
            rss_capacity: 24,
            ..EpidemicConfig::default()
        };
        let mut gossip = EpidemicGossip::new(n, cfg);
        let views = full_views(n, n);
        let local = alive(n);
        let mut rng = SimRng::seed_from_u64(2);
        for cycle in 0..12 {
            gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &views, &mut rng);
        }
        for i in 0..n {
            assert!(gossip.rss(i).len() <= 24, "node {i} exceeded its RSS bound");
        }
    }

    #[test]
    fn departed_nodes_are_purged_and_do_not_receive() {
        let n = 16;
        let cfg = EpidemicConfig {
            fanout: 4,
            rss_capacity: n,
            ..EpidemicConfig::default()
        };
        let mut gossip = EpidemicGossip::new(n, cfg);
        let views = full_views(n, n);
        let mut local = alive(n);
        let mut rng = SimRng::seed_from_u64(3);
        for cycle in 0..6 {
            gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &views, &mut rng);
        }
        // Node 5 departs.
        local[5] = None;
        for cycle in 6..12 {
            gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &views, &mut rng);
        }
        for i in 0..n {
            if i == 5 {
                continue;
            }
            assert!(
                gossip.rss(i).get(5).is_none(),
                "node {i} still believes the departed node 5 is alive"
            );
        }
    }

    #[test]
    fn ttl_limits_propagation_on_a_line_overlay() {
        // Views form a directed line 0 -> 1 -> 2 -> ...; with TTL 2 a record from node 0 can
        // reach node 1 (hop 1) and node 2 (hop 2) but must never reach node 4.
        let n = 8;
        let cfg = EpidemicConfig {
            fanout: 1,
            ttl: 2,
            rss_capacity: n,
            staleness_limit: SimDuration::from_hours(10),
        };
        let mut gossip = EpidemicGossip::new(n, cfg);
        let views: Vec<NewscastView> = (0..n)
            .map(|i| {
                let mut v = NewscastView::new(i, 1);
                if i + 1 < n {
                    v.insert(i + 1, SimTime::ZERO);
                }
                v
            })
            .collect();
        let local = alive(n);
        let mut rng = SimRng::seed_from_u64(4);
        for cycle in 0..20 {
            gossip.run_cycle(SimTime::from_secs(cycle), &local, &views, &mut rng);
        }
        assert!(gossip.rss(1).get(0).is_some());
        assert!(gossip.rss(2).get(0).is_some());
        assert!(
            gossip.rss(4).get(0).is_none(),
            "TTL 2 must stop node 0's record before node 4"
        );
    }

    #[test]
    fn message_accounting_matches_fanout() {
        let n = 10;
        let cfg = EpidemicConfig {
            fanout: 3,
            rss_capacity: n,
            ..EpidemicConfig::default()
        };
        let mut gossip = EpidemicGossip::new(n, cfg);
        let views = full_views(n, n);
        let local = alive(n);
        let mut rng = SimRng::seed_from_u64(5);
        gossip.run_cycle(SimTime::ZERO, &local, &views, &mut rng);
        // Every node knows only itself in the first cycle, so each sends exactly fanout
        // messages of one record each.
        assert_eq!(gossip.messages_sent(), (n * 3) as u64);
        assert_eq!(gossip.records_sent(), (n * 3) as u64);
    }

    #[test]
    fn forget_node_clears_all_traces() {
        let n = 8;
        let mut gossip = EpidemicGossip::new(
            n,
            EpidemicConfig {
                fanout: 3,
                rss_capacity: n,
                ..EpidemicConfig::default()
            },
        );
        let views = full_views(n, n);
        let local = alive(n);
        let mut rng = SimRng::seed_from_u64(6);
        for cycle in 0..5 {
            gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &views, &mut rng);
        }
        gossip.forget_node(3);
        for i in 0..n {
            assert!(gossip.rss(i).get(3).is_none());
        }
        assert!(gossip.rss(3).is_empty());
    }
}
