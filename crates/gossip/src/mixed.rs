//! The mixed gossip protocol: Newscast views + epidemic state dissemination + aggregation.
//!
//! [`MixedGossip`] is the facade the scheduling core drives.  Once per gossip cycle (five
//! minutes in the paper) the core hands it a snapshot of every node's local truth
//! ([`LocalNodeState`]); the protocol then
//!
//! 1. reshuffles the Newscast views (random peer sampling),
//! 2. runs one epidemic push cycle spreading `(capacity, total load)` records into the
//!    bounded per-node `RSS`, and
//! 3. runs one push–pull averaging cycle each for the average node capacity and the average
//!    bandwidth.
//!
//! The schedulers later read [`MixedGossip::rss`] to pick candidate resource nodes
//! (Formula 9) and [`MixedGossip::expected_costs`] to estimate RPM / `eft` (Eq. 1, 7, 8).
//!
//! [`MixedGossip::run_cycle`] borrows the snapshot slice and advances the caller's RNG stream
//! in place; the scheduling core reuses one scratch buffer for the snapshot across cycles
//! (filled in global node order, so the per-node state the protocol sees is independent of how
//! the core's event loop is sharded).  The gossip interval also caps the engine's conservative
//! window width, so every cycle runs at a window barrier over a settled grid.

use crate::aggregation::{AggregationConfig, AggregationGossip};
use crate::epidemic::{EpidemicConfig, EpidemicGossip, LocalAdvertisement};
use crate::state::{PeerId, ResourceStateSet};
use crate::view::NewscastView;
use p2pgrid_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Ground-truth local state of one node, supplied by the simulation core every cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalNodeState {
    /// False once the node has churned away.
    pub alive: bool,
    /// Aggregate node capacity in MIPS (all execution slots combined).
    pub capacity_mips: f64,
    /// Number of execution slots behind that aggregate (paper: 1).
    pub slots: usize,
    /// Current total load (running + ready tasks) in MI.
    pub total_load_mi: f64,
    /// The node's locally measured average bandwidth towards its landmarks, in Mb/s.
    pub local_avg_bandwidth_mbps: f64,
}

impl LocalNodeState {
    /// The execution rate of *one* slot in MIPS — what a single task runs at.
    pub fn per_slot_capacity_mips(&self) -> f64 {
        self.capacity_mips / self.slots.max(1) as f64
    }
}

/// Configuration of the mixed protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedGossipConfig {
    /// Epidemic fan-out; `None` selects the paper's `log2(n)` rule.
    pub fanout: Option<usize>,
    /// Record TTL in hops (paper: 4).
    pub ttl: u32,
    /// Bound on each node's `RSS`; `None` selects `4 * log2(n)`, which keeps the measured
    /// size in the "less than 30 even at 2 000 nodes" band of Fig. 11(a).
    pub rss_capacity: Option<usize>,
    /// Newscast view size; `None` selects `2 * log2(n)`.
    pub view_size: Option<usize>,
    /// Records older than this are purged.
    pub staleness_limit: SimDuration,
    /// Aggregation epoch length in cycles.
    pub aggregation_restart_every: u32,
    /// Payload + header bytes per gossip message (paper: ~100 bytes).
    pub bytes_per_message: u64,
}

impl Default for MixedGossipConfig {
    fn default() -> Self {
        MixedGossipConfig {
            fanout: None,
            ttl: 4,
            rss_capacity: None,
            view_size: None,
            staleness_limit: SimDuration::from_mins(30),
            aggregation_restart_every: 12,
            bytes_per_message: 100,
        }
    }
}

/// Traffic statistics of the protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipStats {
    /// Gossip cycles executed.
    pub cycles: u64,
    /// Epidemic push messages sent.
    pub epidemic_messages: u64,
    /// Aggregation exchanges performed.
    pub aggregation_exchanges: u64,
    /// Estimated bytes placed on the network.
    pub bytes_sent: u64,
}

/// The combined protocol state for all nodes.
#[derive(Debug, Clone)]
pub struct MixedGossip {
    n: usize,
    config: MixedGossipConfig,
    views: Vec<NewscastView>,
    epidemic: EpidemicGossip,
    agg_capacity: AggregationGossip,
    agg_bandwidth: AggregationGossip,
    stats: GossipStats,
}

impl MixedGossip {
    /// Create the protocol state for `n` nodes, bootstrapping every view with random peers.
    pub fn new(n: usize, config: MixedGossipConfig, rng: &mut SimRng) -> Self {
        let fanout = config.fanout.unwrap_or_else(|| crate::default_fanout(n));
        let view_size = config
            .view_size
            .unwrap_or_else(|| (2 * crate::default_fanout(n)).max(4));
        let rss_capacity = config
            .rss_capacity
            .unwrap_or_else(|| (4 * crate::default_fanout(n)).max(8));
        let mut views: Vec<NewscastView> =
            (0..n).map(|i| NewscastView::new(i, view_size)).collect();
        let all: Vec<PeerId> = (0..n).collect();
        for (i, view) in views.iter_mut().enumerate() {
            for &p in rng.choose_multiple(&all, view_size.min(n.saturating_sub(1)) + 1) {
                if p != i {
                    view.insert(p, SimTime::ZERO);
                }
            }
        }
        let epidemic = EpidemicGossip::new(
            n,
            EpidemicConfig {
                fanout,
                ttl: config.ttl,
                rss_capacity,
                staleness_limit: config.staleness_limit,
            },
        );
        let agg_cfg = AggregationConfig {
            restart_every: config.aggregation_restart_every,
        };
        MixedGossip {
            n,
            config,
            views,
            epidemic,
            agg_capacity: AggregationGossip::new(n, agg_cfg),
            agg_bandwidth: AggregationGossip::new(n, agg_cfg),
            stats: GossipStats::default(),
        }
    }

    /// Number of nodes the protocol was created for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The configuration in use.
    pub fn config(&self) -> &MixedGossipConfig {
        &self.config
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// The resource state set node `i` currently holds.
    pub fn rss(&self, i: PeerId) -> &ResourceStateSet {
        self.epidemic.rss(i)
    }

    /// Node `i`'s current estimate of the system-wide average *per-slot* execution rate
    /// (MIPS) — the rate one task runs at on an average node.  With the paper's single-slot
    /// nodes this is exactly the average capacity; multi-slot nodes contribute
    /// `capacity / slots`, not their aggregate, because the expected-cost model (Eq. 1, 7, 8)
    /// uses this average as the rate a *single* task executes at.
    pub fn avg_capacity_estimate(&self, i: PeerId) -> f64 {
        self.agg_capacity.estimate(i)
    }

    /// Node `i`'s current estimate of the system-wide average bandwidth (Mb/s).
    pub fn avg_bandwidth_estimate(&self, i: PeerId) -> f64 {
        self.agg_bandwidth.estimate(i)
    }

    /// The `(average capacity, average bandwidth)` pair node `i` would use for expected-time
    /// estimates, with a floor to keep the values usable before the protocol has converged.
    pub fn expected_costs(&self, i: PeerId) -> (f64, f64) {
        let cap = self.avg_capacity_estimate(i).max(1e-6);
        let bw = self.avg_bandwidth_estimate(i).max(1e-6);
        (cap, bw)
    }

    /// Clear every trace of a departed node (called by the churn model).
    pub fn forget_node(&mut self, node: PeerId) {
        self.epidemic.forget_node(node);
        for v in &mut self.views {
            v.retain_alive(&|p| p == node);
        }
    }

    /// Run one full mixed-gossip cycle at virtual time `now`.
    pub fn run_cycle(&mut self, now: SimTime, local: &[LocalNodeState], rng: &mut SimRng) {
        assert_eq!(local.len(), self.n);
        let alive: Vec<PeerId> = (0..self.n).filter(|&i| local[i].alive).collect();

        // 1. Newscast view maintenance: drop departed peers, bootstrap empty views, and perform
        //    one exchange per alive node.
        for v in &mut self.views {
            v.retain_alive(&|p| !local[p].alive);
        }
        for &i in &alive {
            if self.views[i].is_empty() {
                let candidates: Vec<PeerId> = alive.iter().copied().filter(|&p| p != i).collect();
                for &p in rng.choose_multiple(&candidates, self.views[i].size_limit()) {
                    self.views[i].insert(p, now);
                }
            }
        }
        for &i in &alive {
            let peer = self.views[i]
                .random_peer(rng)
                .filter(|&p| local[p].alive && p != i);
            if let Some(p) = peer {
                // Split-borrow the two views.
                let (a, b) = if i < p {
                    let (lo, hi) = self.views.split_at_mut(p);
                    (&mut lo[i], &mut hi[0])
                } else {
                    let (lo, hi) = self.views.split_at_mut(i);
                    (&mut hi[0], &mut lo[p])
                };
                NewscastView::exchange(a, b, now);
            }
        }

        // 2. Epidemic dissemination of node state.
        let adverts: Vec<Option<LocalAdvertisement>> = local
            .iter()
            .map(|s| {
                s.alive.then_some(LocalAdvertisement {
                    capacity_mips: s.capacity_mips,
                    slots: s.slots,
                    total_load_mi: s.total_load_mi,
                })
            })
            .collect();
        // Derived streams depend only on (key, label), never on the parent's position, so a
        // constant label would replay the identical random sequence every cycle; indexing the
        // derivation by the cycle counter keeps each cycle's peer sampling fresh.
        let cycle = self.stats.cycles;
        let epidemic_before = self.epidemic.messages_sent();
        self.epidemic.run_cycle(
            now,
            &adverts,
            &self.views,
            &mut rng.derive_indexed("epidemic", cycle),
        );
        let epidemic_delta = self.epidemic.messages_sent() - epidemic_before;

        // 3. Aggregation of the two global statistics.  The capacity average feeds the
        //    expected-cost model as "the rate one task runs at", so multi-slot nodes
        //    contribute their per-slot rate — dividing by 1 is exact, keeping single-slot
        //    runs bit-identical to the paper model.
        let caps: Vec<Option<f64>> = local
            .iter()
            .map(|s| s.alive.then_some(s.per_slot_capacity_mips()))
            .collect();
        let bws: Vec<Option<f64>> = local
            .iter()
            .map(|s| s.alive.then_some(s.local_avg_bandwidth_mbps))
            .collect();
        let agg_before = self.agg_capacity.exchanges() + self.agg_bandwidth.exchanges();
        self.agg_capacity.run_cycle(
            &caps,
            &self.views,
            &mut rng.derive_indexed("agg-capacity", cycle),
        );
        self.agg_bandwidth.run_cycle(
            &bws,
            &self.views,
            &mut rng.derive_indexed("agg-bandwidth", cycle),
        );
        let agg_delta = self.agg_capacity.exchanges() + self.agg_bandwidth.exchanges() - agg_before;

        // 4. Traffic accounting (~100 bytes per message / exchange, as argued in §IV.A).
        self.stats.cycles += 1;
        self.stats.epidemic_messages += epidemic_delta;
        self.stats.aggregation_exchanges += agg_delta;
        self.stats.bytes_sent += (epidemic_delta + agg_delta) * self.config.bytes_per_message;
    }

    /// Average `RSS` size over all alive nodes — the quantity plotted in Fig. 11(a).
    pub fn average_rss_size(&self, local: &[LocalNodeState]) -> f64 {
        let alive: Vec<PeerId> = (0..self.n).filter(|&i| local[i].alive).collect();
        if alive.is_empty() {
            return 0.0;
        }
        alive.iter().map(|&i| self.rss(i).len() as f64).sum::<f64>() / alive.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_local(n: usize) -> Vec<LocalNodeState> {
        (0..n)
            .map(|i| LocalNodeState {
                alive: true,
                capacity_mips: [1.0, 2.0, 4.0, 8.0, 16.0][i % 5],
                slots: 1,
                total_load_mi: (i as f64) * 50.0,
                local_avg_bandwidth_mbps: 5.0,
            })
            .collect()
    }

    #[test]
    fn cycle_spreads_state_and_estimates_averages() {
        let n = 100;
        let mut rng = SimRng::seed_from_u64(1);
        let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
        let local = uniform_local(n);
        for c in 0..12 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        // Average capacity of the population: (1+2+4+8+16)/5 = 6.2 MIPS.
        let (cap, bw) = gossip.expected_costs(0);
        assert!(
            (cap - 6.2).abs() < 0.6,
            "capacity estimate {cap} too far from 6.2"
        );
        assert!(
            (bw - 5.0).abs() < 0.5,
            "bandwidth estimate {bw} too far from 5.0"
        );
        // RSS populated but bounded.
        let avg = gossip.average_rss_size(&local);
        assert!(avg > 3.0, "RSS too small: {avg}");
        let bound = gossip.rss(0).capacity() as f64;
        assert!(avg <= bound + 1e-9);
        // Traffic was accounted.
        let stats = gossip.stats();
        assert_eq!(stats.cycles, 12);
        assert!(stats.epidemic_messages > 0);
        assert!(stats.bytes_sent >= stats.epidemic_messages * 100);
    }

    #[test]
    fn rss_stays_within_o_log_n_band_across_scales() {
        // The Fig. 11(a) claim: the number of nodes known per node stays below ~30 as the
        // system scales (here we check a few scales cheaply).
        for &n in &[50usize, 100, 200, 400] {
            let mut rng = SimRng::seed_from_u64(n as u64);
            let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
            let local = uniform_local(n);
            for c in 0..10 {
                gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
            }
            let avg = gossip.average_rss_size(&local);
            assert!(
                avg <= 40.0,
                "n={n}: average RSS {avg} exceeds the O(log n) band"
            );
            assert!(avg >= 3.0, "n={n}: average RSS {avg} suspiciously small");
        }
    }

    #[test]
    fn capacity_aggregation_averages_per_slot_rates() {
        // A population of 16-slot nodes advertising a 16 MIPS aggregate runs one task at
        // 1 MIPS per slot; the capacity estimate must converge towards 1, not 16.
        let n = 80;
        let mut rng = SimRng::seed_from_u64(23);
        let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
        let local: Vec<LocalNodeState> = (0..n)
            .map(|_| LocalNodeState {
                alive: true,
                capacity_mips: 16.0,
                slots: 16,
                total_load_mi: 0.0,
                local_avg_bandwidth_mbps: 5.0,
            })
            .collect();
        for c in 0..12 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        let est = gossip.avg_capacity_estimate(0);
        assert!(
            (est - 1.0).abs() < 0.1,
            "per-slot rate estimate {est} should approach 1 MIPS, not the 16 MIPS aggregate"
        );
    }

    #[test]
    fn churned_nodes_disappear_from_views_and_rss() {
        let n = 60;
        let mut rng = SimRng::seed_from_u64(7);
        let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
        let mut local = uniform_local(n);
        for c in 0..6 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        // A third of the nodes churn away.
        for (i, s) in local.iter_mut().enumerate() {
            if i % 3 == 0 {
                s.alive = false;
                gossip.forget_node(i);
            }
        }
        for c in 6..14 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        for i in 0..n {
            if !local[i].alive {
                continue;
            }
            for r in gossip.rss(i).records() {
                assert!(
                    local[r.node].alive,
                    "node {i} still lists departed node {}",
                    r.node
                );
            }
        }
        // The capacity estimate now reflects only the survivors.
        let survivors: Vec<Option<f64>> = local
            .iter()
            .map(|s| s.alive.then_some(s.capacity_mips))
            .collect();
        let truth = AggregationGossip::true_mean(&survivors);
        let est = gossip.avg_capacity_estimate(1);
        assert!(
            (est - truth).abs() / truth < 0.25,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let n = 40;
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
            let local = uniform_local(n);
            for c in 0..8 {
                gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
            }
            let sizes: Vec<usize> = (0..n).map(|i| gossip.rss(i).len()).collect();
            (sizes, gossip.stats())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1.epidemic_messages, 0);
    }

    #[test]
    fn joined_node_catches_up() {
        let n = 30;
        let mut rng = SimRng::seed_from_u64(9);
        let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
        let mut local = uniform_local(n);
        local[29].alive = false;
        for c in 0..6 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        assert_eq!(gossip.rss(29).len(), 0);
        // Node 29 joins.
        local[29].alive = true;
        for c in 6..12 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        assert!(
            gossip.rss(29).len() >= 2,
            "joined node never learned about peers"
        );
        assert!(gossip.avg_capacity_estimate(29) > 0.0);
    }

    #[test]
    fn single_node_system_is_degenerate_but_stable() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut gossip = MixedGossip::new(1, MixedGossipConfig::default(), &mut rng);
        let local = vec![LocalNodeState {
            alive: true,
            capacity_mips: 4.0,
            slots: 1,
            total_load_mi: 0.0,
            local_avg_bandwidth_mbps: 2.0,
        }];
        for c in 0..3 {
            gossip.run_cycle(SimTime::from_secs(c * 300), &local, &mut rng);
        }
        assert_eq!(gossip.rss(0).len(), 1, "a node always knows itself");
        assert!((gossip.avg_capacity_estimate(0) - 4.0).abs() < 1e-9);
    }
}
