//! # p2pgrid-gossip — the mixed gossip resource-discovery substrate
//!
//! Section III.B of the paper describes a **mixed gossip protocol** combining two classic
//! protocols, both of which this crate implements from scratch:
//!
//! * an **epidemic gossip** protocol disseminating per-node *state information* — each node
//!   periodically pushes the latest `(capacity, total load)` records it knows (its own plus
//!   those it collected) to `log2(n)` neighbours chosen through a Newscast-style random view;
//!   records carry a TTL (4 hops in the paper) and each node keeps only a bounded
//!   *resource state set* `RSS` of `O(log n)` fresh records;
//! * an **aggregation gossip** protocol (Jelasity-style push–pull averaging) computing global
//!   *statistics* — the system-wide average node capacity and average bandwidth — which the
//!   schedulers use to estimate `eet`, `ett`, RPM and `eft`.
//!
//! The protocols are *cycle-driven*: the simulation core calls [`MixedGossip::run_cycle`] every
//! gossip period (five minutes in the paper) with a snapshot of each node's true local state,
//! and reads back each node's current `RSS` and average estimates when scheduling.  Message and
//! byte counters reproduce the paper's overhead argument (~100 bytes per message, `log2(n)`
//! messages per node per cycle).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregation;
pub mod epidemic;
pub mod mixed;
pub mod state;
pub mod view;

pub use aggregation::AggregationGossip;
pub use epidemic::EpidemicGossip;
pub use mixed::{GossipStats, LocalNodeState, MixedGossip, MixedGossipConfig};
pub use state::{NodeStateRecord, ResourceStateSet};
pub use view::NewscastView;

/// The paper's fan-out rule: each node gossips with `ceil(log2 n)` neighbours per cycle
/// (at least one).
pub fn default_fanout(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (n as f64).log2().ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_matches_paper_examples() {
        // §IV.A: a system of 10^6 nodes gossips with 20 neighbours.
        assert_eq!(default_fanout(1_000_000), 20);
        assert_eq!(default_fanout(1024), 10);
        assert_eq!(default_fanout(1000), 10);
        assert_eq!(default_fanout(2), 1);
        assert_eq!(default_fanout(1), 1);
    }
}
