//! The fault-injection substrate end to end: conservation invariants under arbitrary fault
//! schedules × every recovery policy, and byte-identity of faulty runs across shard counts.
//!
//! The CI matrix re-runs this suite under `P2PGRID_POOL_THREADS` ∈ {1, 8} ×
//! `P2PGRID_SHARDS` ∈ {1, 4}, so each pin here also covers pool widths; shard counts are
//! additionally swept explicitly via `with_shards`, which overrides the env knob.

use p2pgrid::prelude::*;
use proptest::prelude::*;

fn faulty_config(nodes: usize, seed: u64, mtbf_hours: f64, recovery: RecoveryPolicy) -> GridConfig {
    let faults = StochasticFaults::new(
        SimDuration::from_secs_f64(mtbf_hours * 3600.0),
        SimDuration::from_secs(20 * 60),
    );
    let mut cfg = GridConfig::small(nodes)
        .with_seed(seed)
        .with_faults(FaultModel::Stochastic(faults))
        .with_recovery(recovery);
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=8;
    cfg
}

fn every_policy() -> [RecoveryPolicy; 5] {
    [
        RecoveryPolicy::FailWorkflow,
        RecoveryPolicy::Retry {
            budget: 2,
            backoff: SimDuration::from_secs(120),
        },
        RecoveryPolicy::unlimited_retry(),
        RecoveryPolicy::Checkpoint {
            interval: SimDuration::from_secs(10 * 60),
        },
        RecoveryPolicy::Replicate { copies: 2 },
    ]
}

/// Everything a faulty run reports, flattened to exact bits.
#[derive(Debug, PartialEq)]
struct FaultFingerprint {
    submitted: u64,
    completed: u64,
    failed: u64,
    act_bits: u64,
    ae_bits: u64,
    node_failures: u64,
    node_repairs: u64,
    tasks_lost: u64,
    retries: u64,
    recoveries: u64,
    useful_bits: u64,
    wasted_bits: u64,
    latency_bits: u64,
}

fn fingerprint(r: &SimulationReport) -> FaultFingerprint {
    let s = &r.robustness;
    FaultFingerprint {
        submitted: r.submitted,
        completed: r.completed,
        failed: r.failed,
        act_bits: r.act_secs().to_bits(),
        ae_bits: r.average_efficiency().to_bits(),
        node_failures: s.node_failures,
        node_repairs: s.node_repairs,
        tasks_lost: s.tasks_lost,
        retries: s.retries,
        recoveries: s.recoveries,
        useful_bits: s.useful_mi.to_bits(),
        wasted_bits: s.wasted_mi.to_bits(),
        latency_bits: s.recovery_latency_secs_sum.to_bits(),
    }
}

fn run_sharded(cfg: &GridConfig, shards: usize) -> SimulationReport {
    Scenario::build(cfg.clone().with_shards(shards))
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf)
        .run()
}

#[test]
fn stochastic_runs_are_byte_identical_across_shard_counts_for_every_policy() {
    for (i, policy) in every_policy().into_iter().enumerate() {
        let cfg = faulty_config(20, 700 + i as u64, 2.0, policy);
        let base = run_sharded(&cfg, 1);
        assert!(
            base.robustness.node_failures > 0,
            "{policy:?}: the pin is vacuous unless nodes actually fail"
        );
        let base_fp = fingerprint(&base);
        for shards in [2, 4, 8] {
            let sharded = run_sharded(&cfg, shards);
            assert_eq!(
                fingerprint(&sharded),
                base_fp,
                "{policy:?}: {shards} shards diverged from the single-shard run"
            );
        }
    }
}

#[test]
fn correlated_outages_are_byte_identical_across_shard_counts() {
    let outage = CorrelatedOutage {
        group_size: 4,
        mtbf: SimDuration::from_hours(3),
        duration: SimDuration::from_secs(30 * 60),
    };
    let faults = StochasticFaults::new(SimDuration::from_hours(6), SimDuration::from_secs(20 * 60))
        .with_outage(outage);
    let mut cfg = GridConfig::small(24)
        .with_seed(808)
        .with_faults(FaultModel::Stochastic(faults))
        .with_recovery(RecoveryPolicy::unlimited_retry());
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=8;
    let base = run_sharded(&cfg, 1);
    assert!(base.robustness.node_failures > 0);
    let base_fp = fingerprint(&base);
    for shards in [2, 4, 8] {
        assert_eq!(fingerprint(&run_sharded(&cfg, shards)), base_fp);
    }
}

#[test]
fn fault_trace_replays_losses_and_retries_identically_across_shard_counts() {
    let cfg = faulty_config(20, 811, 2.0, RecoveryPolicy::unlimited_retry());
    let record = |shards: usize| {
        let mut trace = TraceRecorder::new();
        let report = Scenario::build(cfg.clone().with_shards(shards))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .observe(&mut trace)
            .run();
        (fingerprint(&report), trace.events().to_vec())
    };
    let (base_fp, base_events) = record(1);
    let lost = base_events
        .iter()
        .filter(|e| matches!(e.1, TraceEvent::TaskLost { .. }))
        .count();
    let retried = base_events
        .iter()
        .filter(|e| matches!(e.1, TraceEvent::TaskRetried { .. }))
        .count();
    assert!(lost > 0, "a 2h-MTBF run must lose some task");
    assert!(
        retried > 0,
        "unlimited retry must re-queue some lost running task"
    );
    for shards in [2, 4, 8] {
        let (fp, events) = record(shards);
        assert_eq!(fp, base_fp, "{shards} shards: report diverged");
        assert_eq!(
            events, base_events,
            "{shards} shards: observer stream diverged"
        );
    }
}

#[test]
fn fault_model_off_is_byte_identical_to_the_default_config() {
    let mut plain = GridConfig::small(16).with_seed(900);
    plain.workflows_per_node = 2;
    let explicit = plain
        .clone()
        .with_faults(FaultModel::Off)
        .with_recovery(RecoveryPolicy::FailWorkflow);
    let a = run_sharded(&plain, 4);
    let b = run_sharded(&explicit, 4);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.robustness.node_failures, 0);
    assert_eq!(a.robustness.tasks_lost, 0);
    assert_eq!(a.robustness.wasted_mi, 0.0);
}

proptest! {
    // Each case is a full end-to-end run; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Workflow conservation holds for any fault schedule × any recovery policy: every
    /// submitted workflow is either completed, failed, or still active at the horizon —
    /// never double-counted, never dropped.  The robustness ledger stays consistent with
    /// the event counts, and metric records are in bijection with completions.
    #[test]
    fn prop_fault_schedules_conserve_workflows(
        seed in 0u64..10_000,
        mtbf_hours in 1.0f64..12.0,
        policy_idx in 0usize..5,
        budget in 1u32..4,
        backoff_secs in 0u64..600,
        interval_secs in 300u64..3600,
        copies in 2usize..4,
    ) {
        let policy = match policy_idx {
            0 => RecoveryPolicy::FailWorkflow,
            1 => RecoveryPolicy::Retry {
                budget,
                backoff: SimDuration::from_secs(backoff_secs),
            },
            2 => RecoveryPolicy::unlimited_retry(),
            3 => RecoveryPolicy::Checkpoint {
                interval: SimDuration::from_secs(interval_secs),
            },
            _ => RecoveryPolicy::Replicate { copies },
        };
        let mut cfg = faulty_config(16, seed, mtbf_hours, policy);
        cfg.workflows_per_node = 1;
        cfg.horizon = SimDuration::from_hours(10);
        let report = Scenario::build(cfg)
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        let s = &report.robustness;

        // submitted == completed + failed + still-active: the still-active remainder is
        // whatever the horizon cut off, so the two accounted buckets can never overshoot.
        prop_assert_eq!(report.submitted, 8); // 50% stable nodes host the workflows
        prop_assert!(report.completed + report.failed <= report.submitted);
        prop_assert!(report.metrics.records().len() as u64 == report.completed);

        // Repairs trail failures by at most the nodes still down at the horizon.
        prop_assert!(s.node_repairs <= s.node_failures);
        // Every recovery and every retry traces back to a distinct loss event.
        prop_assert!(s.recoveries <= s.tasks_lost);
        prop_assert!(s.retries <= s.tasks_lost);
        // The work ledger is non-negative and goodput is a proper fraction.
        prop_assert!(s.useful_mi >= 0.0);
        prop_assert!(s.wasted_mi >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.goodput()));
        prop_assert!(s.recovery_latency_secs_sum >= 0.0);
        if s.recoveries == 0 {
            prop_assert_eq!(s.recovery_latency_secs_sum, 0.0);
        }
        // Under the paper policy a lost running task fails its workflow, so nothing is
        // ever retried; with an unlimited retry budget nothing ever fails.
        match policy {
            RecoveryPolicy::FailWorkflow => prop_assert_eq!(s.retries, 0),
            RecoveryPolicy::Retry { budget, .. } if budget == u32::MAX => {
                prop_assert_eq!(report.failed, 0);
            }
            _ => {}
        }
    }
}
