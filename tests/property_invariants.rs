//! Property-based integration tests: simulation invariants that must hold for any seed and any
//! (small) configuration.

use p2pgrid::prelude::*;
use proptest::prelude::*;

fn any_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Dsmf),
        Just(Algorithm::Dheft),
        Just(Algorithm::Dsdf),
        Just(Algorithm::MinMin),
        Just(Algorithm::MaxMin),
        Just(Algorithm::Sufferage),
        Just(Algorithm::Heft),
        Just(Algorithm::Smf),
    ]
}

proptest! {
    // Full simulations are comparatively expensive, so keep the case count low; each case is
    // still an end-to-end run through every crate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Accounting invariants hold for any seed/algorithm: nothing is double counted, no
    /// workflow fails in a static grid, efficiencies stay in a sane band and the sampled
    /// throughput series is consistent with the final count.
    #[test]
    fn prop_static_run_accounting(seed in 0u64..10_000, alg in any_algorithm(), nodes in 8usize..20) {
        let mut cfg = GridConfig::small(nodes).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workflow.tasks = 2..=8;
        cfg.horizon = SimDuration::from_hours(10);
        let report = GridSimulation::with_algorithm(cfg, alg).run();

        prop_assert_eq!(report.submitted, nodes as u64);
        prop_assert!(report.completed <= report.submitted);
        prop_assert_eq!(report.failed, 0);
        prop_assert!(report.metrics.records().len() as u64 == report.completed);
        if report.completed > 0 {
            prop_assert!(report.act_secs() > 0.0);
            prop_assert!(report.average_efficiency() > 0.0);
            prop_assert!(report.average_efficiency() < 5.0);
            for r in report.metrics.records() {
                prop_assert!(r.completion_time_secs() >= 0.0);
                prop_assert!(r.efficiency() >= 0.0);
            }
        }
        let last = report.metrics.throughput_series().last_value().unwrap_or(0.0);
        prop_assert_eq!(last as u64, report.completed);
    }

    /// Under churn, workflow accounting still balances: completed + failed never exceeds
    /// submitted, and with rescheduling enabled nothing is ever recorded as failed.
    #[test]
    fn prop_churn_accounting(seed in 0u64..10_000, df in 0.05f64..0.4, reschedule in proptest::bool::ANY) {
        let mut churn = ChurnConfig::with_dynamic_factor(df);
        churn.reschedule_lost_tasks = reschedule;
        let mut cfg = GridConfig::small(16).with_seed(seed).with_churn(churn);
        cfg.workflows_per_node = 1;
        cfg.workflow.tasks = 2..=6;
        cfg.horizon = SimDuration::from_hours(8);
        let report = GridSimulation::with_algorithm(cfg, Algorithm::Dsmf).run();

        prop_assert_eq!(report.submitted, 8); // 50% stable nodes host the workflows
        prop_assert!(report.completed + report.failed <= report.submitted);
        if reschedule {
            prop_assert_eq!(report.failed, 0);
        }
    }
}
