//! Property-based integration tests: simulation invariants that must hold for any seed and any
//! (small) configuration.

use p2pgrid::core::engine::node::{ReadyEntry, ReadySet};
use p2pgrid::core::policy::second_phase::{ready_key, ReadyTaskView};
use p2pgrid::core::{CandidateNode, FinishTimeEstimator};
use p2pgrid::prelude::*;
use p2pgrid::workflow::TaskId;
use proptest::prelude::*;

fn any_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Dsmf),
        Just(Algorithm::Dheft),
        Just(Algorithm::Dsdf),
        Just(Algorithm::MinMin),
        Just(Algorithm::MaxMin),
        Just(Algorithm::Sufferage),
        Just(Algorithm::Heft),
        Just(Algorithm::Smf),
    ]
}

proptest! {
    // Full simulations are comparatively expensive, so keep the case count low; each case is
    // still an end-to-end run through every crate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Accounting invariants hold for any seed/algorithm: nothing is double counted, no
    /// workflow fails in a static grid, efficiencies stay in a sane band and the sampled
    /// throughput series is consistent with the final count.
    #[test]
    fn prop_static_run_accounting(seed in 0u64..10_000, alg in any_algorithm(), nodes in 8usize..20) {
        let mut cfg = GridConfig::small(nodes).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workload.generator_mut().tasks = 2..=8;
        cfg.horizon = SimDuration::from_hours(10);
        let report = Scenario::build(cfg).unwrap().simulate_algorithm(alg).run();

        prop_assert_eq!(report.submitted, nodes as u64);
        prop_assert!(report.completed <= report.submitted);
        prop_assert_eq!(report.failed, 0);
        prop_assert!(report.metrics.records().len() as u64 == report.completed);
        if report.completed > 0 {
            prop_assert!(report.act_secs() > 0.0);
            prop_assert!(report.average_efficiency() > 0.0);
            prop_assert!(report.average_efficiency() < 5.0);
            for r in report.metrics.records() {
                prop_assert!(r.completion_time_secs() >= 0.0);
                prop_assert!(r.efficiency() >= 0.0);
            }
        }
        let last = report.metrics.throughput_series().last_value().unwrap_or(0.0);
        prop_assert_eq!(last as u64, report.completed);
    }

    /// Under churn, workflow accounting still balances: completed + failed never exceeds
    /// submitted, and with rescheduling enabled nothing is ever recorded as failed.
    #[test]
    fn prop_churn_accounting(seed in 0u64..10_000, df in 0.05f64..0.4, reschedule in proptest::bool::ANY) {
        let recovery = if reschedule {
            RecoveryPolicy::unlimited_retry()
        } else {
            RecoveryPolicy::FailWorkflow
        };
        let mut cfg = GridConfig::small(16)
            .with_seed(seed)
            .with_churn(ChurnConfig::with_dynamic_factor(df))
            .with_recovery(recovery);
        cfg.workflows_per_node = 1;
        cfg.workload.generator_mut().tasks = 2..=6;
        cfg.horizon = SimDuration::from_hours(8);
        let report = Scenario::build(cfg)
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run();

        prop_assert_eq!(report.submitted, 8); // 50% stable nodes host the workflows
        prop_assert!(report.completed + report.failed <= report.submitted);
        if reschedule {
            prop_assert_eq!(report.failed, 0);
        }
    }

    /// The fixed Formula 9 model on multi-slot nodes: estimated vs simulated finish time agree
    /// within list-scheduling slack (the analogue of the transfer-overlap bound — the estimate
    /// collapses per-slot packing into an aggregate drain, so it can only be off by one
    /// backlog task's execution time).  For any per-slot rate, slot count and FCFS backlog:
    ///
    /// * the estimator splits cleanly into `R = backlog / aggregate` + `et = load / per-slot`;
    /// * the simulated finish (the engine's real `ReadySet` drained over `slots` slots) is
    ///   never faster than `et` and never slower than `R + max_backlog_exec + et`;
    /// * with one slot the estimate is *exact* — the paper's single-CPU model.
    #[test]
    fn prop_multislot_estimate_brackets_simulated_finish(
        cap in 1.0f64..16.0,
        slots in 1usize..8,
        prev in proptest::collection::vec(10.0f64..5_000.0, 0..40),
        x in 10.0f64..5_000.0,
    ) {
        let agg = cap * slots as f64;
        let cand = CandidateNode {
            node: 0,
            capacity_mips: agg,
            slots,
            total_load_mi: prev.iter().sum(),
        };
        let bw = |_a: usize, _b: usize| f64::INFINITY;
        let est = FinishTimeEstimator::new(0, &bw);
        let r = cand.queuing_delay_secs();
        let et = cand.execution_secs(x);
        let ft_est = est.finish_time_secs(&cand, x, 0.0, &[]);
        prop_assert!((ft_est - (r + et)).abs() <= 1e-9 * ft_est.max(1.0));
        prop_assert!((et - x / cap).abs() <= 1e-9 * et.max(1.0), "execution must use the per-slot rate");

        // Simulate: drain the engine's ReadySet FCFS over `slots` slots at the per-slot rate,
        // the estimated task arriving last.
        let mut set = ReadySet::new();
        for (i, &load) in prev.iter().chain(std::iter::once(&x)).enumerate() {
            let view = ReadyTaskView {
                workflow_ms_secs: 0.0,
                rpm_secs: 0.0,
                exec_secs: load / cap,
                sufferage_secs: 0.0,
                enqueued_seq: i as u64,
            };
            set.insert(ReadyEntry {
                wf: i,
                task: TaskId(0),
                load_mi: load,
                key: ready_key(SecondPhase::Fcfs, &view),
                view,
                data_ready: true,
            });
        }
        let mut slot_free = vec![0.0f64; slots];
        let mut simulated_finish = 0.0f64;
        while let Some(e) = set.pop_next() {
            let (idx, free_at) = slot_free
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            slot_free[idx] = free_at + e.view.exec_secs;
            if e.wf == prev.len() {
                simulated_finish = slot_free[idx];
            }
        }

        let max_prev_exec = prev.iter().copied().fold(0.0f64, f64::max) / cap;
        let eps = 1e-6 * (1.0 + simulated_finish.max(ft_est));
        prop_assert!(simulated_finish + eps >= et, "finish {simulated_finish} beat pure execution {et}");
        prop_assert!(
            simulated_finish <= r + max_prev_exec + et + eps,
            "finish {simulated_finish} outside the list-scheduling bound {} (R {r}, et {et})",
            r + max_prev_exec + et
        );
        if slots == 1 {
            prop_assert!(
                (simulated_finish - ft_est).abs() <= eps,
                "single slot must make the estimate exact: sim {simulated_finish} vs est {ft_est}"
            );
        }
    }
}
