//! Cross-crate integration tests of the full grid simulation through the public facade.

use p2pgrid::prelude::*;

fn small_config(nodes: usize, seed: u64) -> GridConfig {
    let mut cfg = GridConfig::small(nodes).with_seed(seed);
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=10;
    cfg
}

fn scenario(nodes: usize, seed: u64) -> Scenario {
    Scenario::build(small_config(nodes, seed)).expect("small configs are valid")
}

#[test]
fn dsmf_end_to_end_on_a_small_grid() {
    let report = scenario(20, 1).simulate_algorithm(Algorithm::Dsmf).run();
    assert_eq!(report.submitted, 40);
    assert!(report.completed > 0);
    assert!(report.completed <= report.submitted);
    assert_eq!(report.failed, 0, "a static grid loses no workflows");
    assert!(report.act_secs() > 0.0);
    assert!(report.average_efficiency() > 0.0);
    assert!(
        report.average_efficiency() <= 2.0,
        "efficiency is eft/ct and should not wildly exceed 1"
    );
    // Gossip ran and stayed within its O(log n) space bound.
    assert!(report.gossip_stats.cycles >= 100);
    assert!(report.avg_rss_size >= 1.0);
    assert!(report.avg_rss_size <= 40.0);
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let a = scenario(16, 9).simulate_algorithm(Algorithm::Dsmf).run();
    let b = scenario(16, 9).simulate_algorithm(Algorithm::Dsmf).run();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.act_secs(), b.act_secs());
    assert_eq!(a.average_efficiency(), b.average_efficiency());
    assert_eq!(
        a.metrics.throughput_series().points(),
        b.metrics.throughput_series().points()
    );
}

#[test]
fn all_eight_algorithms_complete_the_same_workload() {
    // One shared world across the whole sweep — the Scenario API's reason to exist.
    let shared = scenario(16, 5);
    for alg in Algorithm::ALL {
        let report = shared.simulate_algorithm(alg).run();
        assert!(report.completed > 0, "{alg} finished nothing");
        assert_eq!(report.submitted, 32, "{alg} saw the wrong workload");
        assert!(
            report.average_efficiency() > 0.0,
            "{alg} reported zero efficiency"
        );
    }
}

#[test]
fn churned_grid_still_makes_progress_and_reports_failures() {
    let cfg = small_config(24, 3).with_churn(ChurnConfig::with_dynamic_factor(0.3));
    let report = Scenario::build(cfg)
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf)
        .run();
    // Half the nodes are stable home nodes, so 12 * 2 workflows are submitted.
    assert_eq!(report.submitted, 24);
    assert!(
        report.completed > 0,
        "heavy churn must not stall the grid completely"
    );
    assert!(report.completed + report.failed <= report.submitted);
}

#[test]
fn rescheduling_extension_eliminates_churn_failures() {
    let cfg = small_config(24, 3)
        .with_churn(ChurnConfig::with_dynamic_factor(0.3))
        .with_recovery(RecoveryPolicy::unlimited_retry());
    let report = Scenario::build(cfg)
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf)
        .run();
    assert_eq!(report.failed, 0);
    assert!(report.completed > 0);
}

#[test]
fn fcfs_ablation_is_wired_through_the_facade() {
    let shared = scenario(16, 7);
    let paper = shared
        .simulate_config(AlgorithmConfig::paper_default(Algorithm::Sufferage))
        .run();
    let fcfs = shared
        .simulate_config(AlgorithmConfig::with_fcfs_second_phase(
            Algorithm::Sufferage,
        ))
        .run();
    assert_eq!(paper.algorithm, "sufferage");
    assert_eq!(fcfs.algorithm, "sufferage+FCFS");
    assert_eq!(paper.submitted, fcfs.submitted);
    assert!(paper.completed > 0 && fcfs.completed > 0);
}

#[test]
fn hourly_sampling_produces_monotone_throughput_series() {
    let report = scenario(16, 13).simulate_algorithm(Algorithm::MinMin).run();
    let points = report.metrics.throughput_series().points();
    // 12-hour small horizon: one sample per hour plus the initial and final samples.
    assert!(points.len() >= 13);
    let mut last = -1.0;
    for &(t, v) in points {
        assert!(v >= last, "throughput series must be non-decreasing");
        assert!(t.as_hours_f64() <= 12.0 + 1e-9);
        last = v;
    }
    assert_eq!(last, report.completed as f64);
}

#[test]
fn stepping_and_run_until_walk_the_same_virtual_clock() {
    let shared = scenario(16, 21);
    let horizon = SimTime::ZERO + SimDuration::from_hours(12);

    let mut session = shared.simulate_algorithm(Algorithm::Dsmf);
    assert_eq!(session.now(), SimTime::ZERO);
    assert_eq!(session.peek_time(), Some(SimTime::ZERO));
    assert_eq!(session.horizon(), horizon);
    assert_eq!(session.algorithm(), "DSMF");

    // Advance to the 6-hour mark: time never runs backwards or past the bound.
    let mid = SimTime::ZERO + SimDuration::from_hours(6);
    let delivered = session.run_until(mid);
    assert!(delivered > 0);
    assert!(session.now() <= mid);
    assert!(session.peek_time().is_none_or(|t| t > mid));
    let mid_sample = session.sample();
    assert!(mid_sample.alive_nodes == 16);

    // Single-stepping from here stays monotone...
    let mut last = session.now();
    for _ in 0..32 {
        let Some(t) = session.step() else { break };
        assert!(t >= last);
        last = t;
    }
    // ...and the remainder of the run drains every event within the horizon.
    session.run_until(horizon);
    assert!(session.peek_time().is_none());
    let report = session.finish();
    assert_eq!(report.submitted, 32);
    assert_eq!(report.end_time, horizon);
}

#[test]
#[allow(deprecated)]
fn legacy_grid_simulation_shim_still_runs() {
    // The deprecated consume-on-run facade must keep working for existing call sites.
    let report = GridSimulation::with_algorithm(small_config(12, 2), Algorithm::Dsmf).run();
    assert_eq!(report.submitted, 24);
    assert!(report.completed > 0);
}
