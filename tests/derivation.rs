//! Copy-on-write scenario derivation pins.
//!
//! Every `Scenario::with_*` method promises two things at once:
//!
//! 1. **Byte identity** — the derived world behaves exactly like `Scenario::build` of the
//!    equivalent `GridConfig`.  Sharing the `Arc`'d topology/metrics/landmark tables is an
//!    optimisation, never a semantic change: a DSMF run on the derived world must produce a
//!    byte-identical `SimulationReport` to a run on the from-scratch rebuild.
//! 2. **Actual sharing** — the expensive tables really are shared (`Arc` identity, checked
//!    through `shares_topology_with` / `shares_workflows_with`), so a whole sweep pays for
//!    one topology + all-pairs-metrics + landmark computation.
//!
//! A third pin covers the execution layer: running a campaign through the work-stealing pool
//! must not perturb any report — pool sizes 1 and 8 and the sequential path all agree bit
//! for bit.

use p2pgrid::experiments::campaign;
use p2pgrid::prelude::*;

fn config(seed: u64) -> GridConfig {
    let mut cfg = GridConfig::small(20).with_seed(seed);
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=10;
    cfg
}

/// One sampled series as exact bits: `(time in ms, f64 bit pattern)` per point.
type SeriesBits = Vec<(u64, u64)>;

/// Every externally observable field of a report, flattened for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    submitted: u64,
    completed: u64,
    failed: u64,
    act_bits: u64,
    ae_bits: u64,
    throughput: SeriesBits,
    act_series: SeriesBits,
    ae_series: SeriesBits,
}

fn fingerprint(report: &SimulationReport) -> Fingerprint {
    let exact = |series: &p2pgrid::metrics::TimeSeries| -> SeriesBits {
        series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_millis(), v.to_bits()))
            .collect()
    };
    Fingerprint {
        submitted: report.submitted,
        completed: report.completed,
        failed: report.failed,
        act_bits: report.act_secs().to_bits(),
        ae_bits: report.average_efficiency().to_bits(),
        throughput: exact(report.metrics.throughput_series()),
        act_series: exact(report.metrics.act_series()),
        ae_series: exact(report.metrics.ae_series()),
    }
}

fn dsmf(scenario: &Scenario) -> Fingerprint {
    fingerprint(&scenario.simulate_algorithm(Algorithm::Dsmf).run())
}

/// The derived world must be byte-identical to `Scenario::build` of its own config — the
/// config each `with_*` method constructed internally, including any pinned stream seeds.
fn assert_matches_fresh_build(derived: &Scenario) {
    let rebuilt = Scenario::build(derived.config().clone()).unwrap();
    let d = dsmf(derived);
    assert!(d.completed > 0, "run must make progress to pin anything");
    assert_eq!(d, dsmf(&rebuilt));
}

#[test]
fn with_seed_matches_fresh_build_and_shares_topology() {
    let base = Scenario::build(config(91)).unwrap();
    let derived = base.with_seed(4242).unwrap();
    assert!(derived.shares_topology_with(&base));
    // The workload re-samples from the new master seed, so it must differ...
    assert!(!derived.shares_workflows_with(&base));
    assert_ne!(dsmf(&base), dsmf(&derived));
    // ...while still matching a from-scratch build of the equivalent config.
    assert_matches_fresh_build(&derived);
}

#[test]
fn with_resource_matches_fresh_build_and_shares_workflows() {
    let base = Scenario::build(config(92)).unwrap();
    let derived = base.with_resource(ResourceModel::multi_core(4)).unwrap();
    assert!(derived.shares_topology_with(&base));
    assert!(derived.shares_workflows_with(&base));
    assert_matches_fresh_build(&derived);
}

#[test]
fn with_workflows_matches_fresh_build() {
    let base = Scenario::build(config(93)).unwrap();
    let mut workflow = base.config().workload.generator().unwrap().clone();
    workflow.load_mi = 100.0..=10_000.0;
    workflow.data_mb = 100.0..=10_000.0;
    let derived = base.with_workflows(workflow).unwrap();
    assert!(derived.shares_topology_with(&base));
    assert!(!derived.shares_workflows_with(&base));
    assert_matches_fresh_build(&derived);
}

#[test]
fn with_load_factor_matches_fresh_build() {
    let base = Scenario::build(config(94)).unwrap();
    let derived = base.with_load_factor(4).unwrap();
    assert!(derived.shares_topology_with(&base));
    assert_matches_fresh_build(&derived);
}

#[test]
fn with_churn_matches_fresh_build() {
    let base = Scenario::build(config(95)).unwrap();
    let derived = base
        .with_churn(ChurnConfig::with_dynamic_factor(0.2))
        .unwrap();
    assert!(derived.shares_topology_with(&base));
    assert_matches_fresh_build(&derived);
}

#[test]
fn with_algorithm_streams_matches_fresh_build_and_keeps_the_workload() {
    let base = Scenario::build(config(96)).unwrap();
    let derived = base.with_algorithm_streams(777).unwrap();
    // The static substrate is untouched: same topology tables, same workflow set.
    assert!(derived.shares_topology_with(&base));
    assert!(derived.shares_workflows_with(&base));
    assert_matches_fresh_build(&derived);
}

#[test]
fn derivations_chain_without_rebuilding_the_topology() {
    let base = Scenario::build(config(97)).unwrap();
    let step1 = base.with_load_factor(3).unwrap();
    let step2 = step1
        .with_churn(ChurnConfig::with_dynamic_factor(0.1))
        .unwrap();
    let step3 = step2.with_seed(1234).unwrap();
    for derived in [&step1, &step2, &step3] {
        assert!(derived.shares_topology_with(&base));
    }
    assert_matches_fresh_build(&step3);
}

#[test]
fn a_32_point_sweep_pays_for_exactly_one_topology_build() {
    // The acceptance criterion: a single-parameter sweep built via `with_seed` performs one
    // topology/PairwiseMetrics/landmark computation total — every derived world points at
    // the base's tables (`Arc` identity), no matter the sweep size.
    let base = Scenario::build(config(98)).unwrap();
    let points: Vec<Scenario> = (0..32)
        .map(|s| base.with_seed(10_000 + s).unwrap())
        .collect();
    for (i, derived) in points.iter().enumerate() {
        assert!(
            derived.shares_topology_with(&base),
            "sweep point {i} rebuilt the topology tables"
        );
    }
    // And the sweep points are genuinely different worlds, not 32 copies of one.
    let a = dsmf(&points[0]);
    let b = dsmf(&points[31]);
    assert_ne!(a, b);
}

#[test]
fn pooled_campaign_matches_sequential_and_any_pool_size() {
    // Scheduling across threads must never leak into the simulation: the same job list run
    // sequentially, on a 1-worker pool and on an 8-worker pool produces byte-identical
    // reports in the same order.  (CI additionally runs the whole suite under
    // P2PGRID_POOL_THREADS=1 and =8 to pin the global pool path.)
    let campaign_base = Campaign::from_config(config(99)).unwrap();
    let points = [1usize, 2, 3];
    let scenarios = campaign_base
        .derive(&points, |base, &lf| base.with_load_factor(lf))
        .unwrap();
    let jobs = campaign::cross(
        &scenarios,
        &[
            AlgorithmConfig::paper_default(Algorithm::Dsmf),
            AlgorithmConfig::paper_default(Algorithm::MinMin),
        ],
    );
    let sequential: Vec<Fingerprint> = campaign::run_sequential(&jobs)
        .iter()
        .map(fingerprint)
        .collect();
    for workers in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .unwrap();
        let pooled: Vec<Fingerprint> =
            pool.install(|| campaign::run(&jobs).iter().map(fingerprint).collect());
        assert_eq!(
            pooled, sequential,
            "{workers}-worker pool diverged from the sequential reference"
        );
    }
}
