//! Integration test of the paper's headline result under resource contention.
//!
//! The abstract claims DSMF cuts the average completion time by 20–60 % and improves the
//! average efficiency by 37.5–90 % over the other *decentralized* algorithms.  Absolute
//! percentages depend on the substrate, but the ordering — DSMF strictly the best decentralized
//! scheduler on both metrics once the grid is contended — is the reproduction target and is
//! asserted here on a contended 48-node grid (load factor 3, the paper's CCR ≈ 0.16 workload).

use p2pgrid::prelude::*;

fn contended_config(seed: u64) -> GridConfig {
    GridConfig::paper_default()
        .with_nodes(48)
        .with_load_factor(3)
        .with_seed(seed)
}

#[test]
fn dsmf_beats_the_other_decentralized_schedulers_under_contention() {
    let seed = 42;
    // One shared world across the four contenders: identical workload by construction.
    let scenario = Scenario::build(contended_config(seed)).unwrap();
    let run = |alg: Algorithm| scenario.simulate_algorithm(alg).run();

    let dsmf = run(Algorithm::Dsmf);
    let dheft = run(Algorithm::Dheft);
    let minmin = run(Algorithm::MinMin);
    let dsdf = run(Algorithm::Dsdf);

    for other in [&dheft, &minmin, &dsdf] {
        assert!(
            dsmf.act_secs() < other.act_secs(),
            "DSMF ACT {:.0} should be below {} ACT {:.0}",
            dsmf.act_secs(),
            other.algorithm,
            other.act_secs()
        );
        assert!(
            dsmf.average_efficiency() > other.average_efficiency(),
            "DSMF AE {:.3} should exceed {} AE {:.3}",
            dsmf.average_efficiency(),
            other.algorithm,
            other.average_efficiency()
        );
    }

    // The paper's Fig. 5/6 shape: the RPM-only DHEFT ordering is clearly worse than DSMF once
    // short workflows start queueing behind long ones.
    let act_reduction_vs_dheft = (dheft.act_secs() - dsmf.act_secs()) / dheft.act_secs() * 100.0;
    assert!(
        act_reduction_vs_dheft > 5.0,
        "expected a clear ACT reduction vs DHEFT, got {act_reduction_vs_dheft:.1}%"
    );
    let ae_improvement_vs_dheft = (dsmf.average_efficiency() - dheft.average_efficiency())
        / dheft.average_efficiency()
        * 100.0;
    assert!(
        ae_improvement_vs_dheft > 10.0,
        "expected a clear AE improvement vs DHEFT, got {ae_improvement_vs_dheft:.1}%"
    );

    // Everyone processed the identical workload.
    assert_eq!(dsmf.submitted, dheft.submitted);
    assert_eq!(dsmf.submitted, minmin.submitted);
}
