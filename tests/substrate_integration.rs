//! Integration tests exercising the substrate crates together (topology + gossip + workflow),
//! independent of the scheduling core.

use p2pgrid::gossip::{LocalNodeState, MixedGossip, MixedGossipConfig};
use p2pgrid::prelude::*;
use p2pgrid::topology::{LandmarkEstimator, PairwiseMetrics};

#[test]
fn gossip_estimates_converge_to_topology_ground_truth() {
    let n = 150;
    let mut rng = SimRng::seed_from_u64(31);
    let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng);
    let metrics = PairwiseMetrics::compute(&topo);
    let landmarks = LandmarkEstimator::build_default(&metrics, &mut rng);

    // Each node's local bandwidth observation is its mean bandwidth to the landmarks, exactly
    // as the grid simulation feeds the aggregation gossip.
    let capacities: Vec<f64> = (0..n).map(|i| [1.0, 2.0, 4.0, 8.0, 16.0][i % 5]).collect();
    let local: Vec<LocalNodeState> = (0..n)
        .map(|i| {
            let bws: Vec<f64> = landmarks
                .landmarks()
                .iter()
                .filter(|&&l| l != i)
                .map(|&l| metrics.bandwidth_mbps(i, l))
                .collect();
            LocalNodeState {
                alive: true,
                capacity_mips: capacities[i],
                slots: 1,
                total_load_mi: 0.0,
                local_avg_bandwidth_mbps: bws.iter().sum::<f64>() / bws.len() as f64,
            }
        })
        .collect();

    let mut gossip = MixedGossip::new(n, MixedGossipConfig::default(), &mut rng);
    for cycle in 0..15 {
        gossip.run_cycle(SimTime::from_secs(cycle * 300), &local, &mut rng);
    }

    let true_capacity = capacities.iter().sum::<f64>() / n as f64;
    let (est_cap, est_bw) = gossip.expected_costs(0);
    assert!(
        (est_cap - true_capacity).abs() / true_capacity < 0.15,
        "capacity estimate {est_cap} too far from {true_capacity}"
    );
    // The landmark-based bandwidth samples are biased towards well-connected pairs, so allow a
    // generous band around the true pairwise average.
    let true_bw = metrics.average_bandwidth_mbps();
    assert!(est_bw > 0.2 * true_bw && est_bw < 5.0 * true_bw);

    // RSS stays within the O(log n) band (Fig. 11a's property).
    let avg_rss = gossip.average_rss_size(&local);
    assert!((4.0..=40.0).contains(&avg_rss), "avg RSS {avg_rss}");
}

#[test]
fn workflow_analysis_is_consistent_with_generated_dags() {
    let gen = WorkflowGenerator::new(WorkflowGeneratorConfig::default());
    let mut rng = SimRng::seed_from_u64(77);
    let costs = ExpectedCosts::new(6.2, 5.0);
    for _ in 0..50 {
        let w = gen.generate(&mut rng);
        let analysis = WorkflowAnalysis::new(&w, costs);
        // eft equals the entry task's RPM and upper-bounds every task's RPM.
        let eft = analysis.expected_finish_time_secs();
        assert!((eft - analysis.rpm_secs(w.entry())).abs() < 1e-9);
        for t in w.task_ids() {
            assert!(analysis.rpm_secs(t) <= eft + 1e-9);
            assert!(analysis.rpm_secs(t) >= 0.0);
        }
        // The critical path is a real path of the DAG from entry to exit.
        let cp = analysis.critical_path();
        assert_eq!(cp.first().copied(), Some(w.entry()));
        assert_eq!(cp.last().copied(), Some(w.exit()));
        for pair in cp.windows(2) {
            assert!(
                w.successors(pair[0]).iter().any(|e| e.task == pair[1]),
                "critical path must follow DAG edges"
            );
        }
    }
}

#[test]
fn landmark_estimates_lower_bound_true_bandwidth_at_scale() {
    let n = 200;
    let mut rng = SimRng::seed_from_u64(5);
    let topo = WaxmanGenerator::new(WaxmanConfig::with_nodes(n)).generate(&mut rng);
    let metrics = PairwiseMetrics::compute(&topo);
    let landmarks = LandmarkEstimator::build_default(&metrics, &mut rng);
    assert_eq!(landmarks.landmarks().len(), 8); // ceil(log2(200))
    let mut checked = 0;
    for u in (0..n).step_by(17) {
        for v in (0..n).step_by(13) {
            if u == v {
                continue;
            }
            assert!(landmarks.estimate_bandwidth_mbps(u, v) <= metrics.bandwidth_mbps(u, v) + 1e-6);
            checked += 1;
        }
    }
    assert!(checked > 100);
}
