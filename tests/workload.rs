//! The workload subsystem end to end: serialized trace artifacts drive the grid through the
//! same sharded engine as the synthetic generator, nonzero arrivals enter mid-run, arrival
//! processes stay byte-identical across shard counts, and the three checked-in artifacts
//! under `workloads/` load and replay.

use p2pgrid::prelude::*;
use std::path::Path;
use std::str::FromStr;

/// Exact-comparison fingerprint of a report (bit patterns, not float equality).
fn fingerprint(report: &SimulationReport) -> (u64, u64, u64, u64, u64) {
    (
        report.submitted,
        report.completed,
        report.failed,
        report.act_secs().to_bits(),
        report.average_efficiency().to_bits(),
    )
}

fn diamond_spec(name: &str) -> WorkflowSpec {
    WorkflowSpec::from_workflow(name, &shapes::diamond(100.0, 500.0, 10.0)).unwrap()
}

fn staggered_workload() -> WorkloadSpec {
    WorkloadSpec {
        name: "staggered".into(),
        workflows: vec![
            diamond_spec("d"),
            WorkflowSpec::from_workflow("m", &shapes::montage_like(3, 800.0, 100.0)).unwrap(),
        ],
        entries: vec![
            WorkloadEntry {
                workflow: "d".into(),
                submit_at_ms: 0,
                home: HomePolicy::Auto,
            },
            WorkloadEntry {
                workflow: "m".into(),
                submit_at_ms: 900_000,
                home: HomePolicy::Node(0),
            },
            WorkloadEntry {
                workflow: "d".into(),
                submit_at_ms: 1_800_000,
                home: HomePolicy::Auto,
            },
        ],
    }
}

fn trace_config(seed: u64) -> GridConfig {
    GridConfig::small(20)
        .with_seed(seed)
        .with_workload(staggered_workload())
}

#[test]
fn serialized_trace_round_trips_to_a_byte_identical_simulation() {
    // Serialize, reparse, and run both sides: the reports must match bit for bit, because the
    // resolved workflows are equal and arrivals are taken verbatim from the entries.
    let original = staggered_workload();
    let reparsed = WorkloadSpec::from_str(&original.to_string_pretty()).unwrap();
    assert_eq!(reparsed, original);
    let a = original.resolve().unwrap();
    let b = reparsed.resolve().unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.workflow, y.workflow, "runtime DAGs must be equal");
    }

    let run = |spec: WorkloadSpec| {
        Scenario::build(GridConfig::small(20).with_seed(7).with_workload(spec))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run()
    };
    assert_eq!(fingerprint(&run(original)), fingerprint(&run(reparsed)));
}

#[test]
fn trace_arrivals_enter_mid_run_at_their_recorded_times() {
    let scenario = Scenario::build(trace_config(11)).unwrap();
    let mut trace = TraceRecorder::new();
    let report = scenario
        .simulate_algorithm(Algorithm::Dsmf)
        .observe(&mut trace)
        .run();
    assert_eq!(report.submitted, 3);
    assert_eq!(report.completed, 3);

    let submissions: Vec<(u64, usize)> = trace
        .events()
        .iter()
        .filter_map(|&(t, e)| match e {
            TraceEvent::WorkflowSubmitted { wf, .. } => Some((t.as_millis(), wf)),
            _ => None,
        })
        .collect();
    assert_eq!(
        submissions.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
        vec![0, 900_000, 1_800_000],
        "each entry must be announced exactly at its submit_at_ms"
    );
    // Entry 1 was pinned to node 0.
    let pinned_home = trace.events().iter().find_map(|&(_, e)| match e {
        TraceEvent::WorkflowSubmitted { wf: 1, home } => Some(home),
        _ => None,
    });
    assert_eq!(pinned_home, Some(0));
}

#[test]
fn arrivals_beyond_the_horizon_are_never_submitted() {
    let mut spec = staggered_workload();
    spec.entries.push(WorkloadEntry {
        workflow: "d".into(),
        submit_at_ms: 1_000 * 3600 * 1_000, // far past any horizon
        home: HomePolicy::Auto,
    });
    let report = Scenario::build(GridConfig::small(20).with_seed(3).with_workload(spec))
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf)
        .run();
    assert_eq!(report.submitted, 3, "the past-horizon entry must not count");
}

#[test]
fn trace_runs_are_shard_count_independent() {
    let base = Scenario::build(trace_config(21).with_shards(1))
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf)
        .run();
    assert_eq!(base.completed, 3);
    for shards in [2, 4, 8] {
        let sharded = Scenario::build(trace_config(21).with_shards(shards))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&base),
            "{shards} shards diverged on the trace workload"
        );
    }
}

#[test]
fn poisson_arrival_runs_are_shard_count_independent_including_observers() {
    // A synthetic workload whose submissions are spread by a Poisson arrival process: the
    // report AND the full ordered observer stream must be byte-identical for every shard count.
    let config = |shards: usize| {
        let mut cfg = GridConfig::small(20)
            .with_seed(31)
            .with_arrivals(ArrivalProcess::Poisson { rate_per_hour: 6.0 })
            .with_shards(shards);
        cfg.workflows_per_node = 2;
        cfg
    };
    let run = |shards: usize| {
        let mut trace = TraceRecorder::new();
        let report = Scenario::build(config(shards))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .observe(&mut trace)
            .run();
        (fingerprint(&report), trace.events().to_vec())
    };
    let (base_fp, base_events) = run(1);
    let spread: Vec<u64> = base_events
        .iter()
        .filter_map(|&(t, e)| match e {
            TraceEvent::WorkflowSubmitted { .. } => Some(t.as_millis()),
            _ => None,
        })
        .collect();
    assert!(
        spread.iter().any(|&t| t > 0),
        "Poisson arrivals must actually spread submissions: {spread:?}"
    );
    for shards in [2, 4, 8] {
        let (fp, events) = run(shards);
        assert_eq!(fp, base_fp, "{shards} shards diverged");
        assert_eq!(
            events, base_events,
            "{shards} shards: observer stream diverged"
        );
    }
}

#[test]
fn derived_scenarios_can_swap_workload_and_arrivals_copy_on_write() {
    let base = Scenario::build(GridConfig::small(20).with_seed(41)).unwrap();
    let trace = base.with_workload(staggered_workload()).unwrap();
    assert!(trace.shares_topology_with(&base));
    assert_eq!(trace.workflow_count(), 3);
    let report = trace.simulate_algorithm(Algorithm::Dsmf).run();
    assert_eq!(report.submitted, 3);

    let poisson = base
        .with_arrivals(ArrivalProcess::Poisson { rate_per_hour: 4.0 })
        .unwrap();
    assert!(poisson.shares_topology_with(&base));
    assert_eq!(
        poisson.workflow_count(),
        base.workflow_count(),
        "arrival swap must keep the synthetic DAGs"
    );

    // Deriving back to the base inputs reproduces the base run exactly.
    let back = poisson.with_arrivals(ArrivalProcess::Batch).unwrap();
    assert_eq!(
        fingerprint(&back.simulate_algorithm(Algorithm::Dsmf).run()),
        fingerprint(&base.simulate_algorithm(Algorithm::Dsmf).run()),
    );
}

#[test]
fn checked_in_artifacts_load_resolve_and_replay() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("workloads");
    for name in ["montage", "cybershake", "epigenomics"] {
        let path = dir.join(format!("{name}.json"));
        let spec = WorkloadSpec::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(spec.name, name);
        let resolved = spec.resolve().unwrap();
        assert!(!resolved.is_empty());

        // Round trip is a fixpoint: the checked-in bytes are exactly what `save` writes.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            spec.to_string_pretty(),
            text,
            "{name}.json must be regenerated"
        );

        let entries = spec.entry_count() as u64;
        let report = Scenario::build(GridConfig::small(24).with_seed(5).with_workload(spec))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        assert_eq!(report.submitted, entries, "{name}: all entries must arrive");
        assert_eq!(
            report.completed, entries,
            "{name}: all instances must finish"
        );
    }
}
