//! Shard-count independence: the sharded conservative time-window event loop is a pure
//! performance knob.  For any shard count `S` (and any worker-pool width — see the CI matrix,
//! which re-runs this suite under `P2PGRID_POOL_THREADS` ∈ {1, 8} × `P2PGRID_SHARDS` ∈ {1, 4}),
//! every pinned scenario must produce a report — and an observer event stream — byte-identical
//! to the single-shard run.  On top of the exact-equality pins, a property sweep checks the
//! conservative-PDES soundness invariants on random configurations: windows are never wider
//! than the engine lookahead, and no cross-shard event is ever delivered with less than one
//! lookahead of delay.
//!
//! Shard counts are pinned per run via [`ShardSpec::Fixed`] / `with_shards` rather than the
//! `P2PGRID_SHARDS` env override, so the tests stay parallel-safe.

use p2pgrid::prelude::*;
use proptest::prelude::*;

fn config(seed: u64) -> GridConfig {
    let mut cfg = GridConfig::small(20).with_seed(seed);
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=10;
    cfg
}

fn het_preemptive(seed: u64) -> GridConfig {
    config(seed).with_resource(
        ResourceModel::heterogeneous(vec![
            SlotClass {
                slots: 1,
                weight: 0.8,
            },
            SlotClass {
                slots: 16,
                weight: 0.2,
            },
        ])
        .preemptive(),
    )
}

/// One sampled series as exact bits: `(time in ms, f64 bit pattern)` per point.
type SeriesBits = Vec<(u64, u64)>;

/// Every externally observable field of a report, flattened for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    submitted: u64,
    completed: u64,
    failed: u64,
    act_bits: u64,
    ae_bits: u64,
    avg_rss_bits: u64,
    throughput: SeriesBits,
    act_series: SeriesBits,
    ae_series: SeriesBits,
}

fn fingerprint(report: &SimulationReport) -> Fingerprint {
    let exact = |series: &p2pgrid::metrics::TimeSeries| -> SeriesBits {
        series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_millis(), v.to_bits()))
            .collect()
    };
    Fingerprint {
        submitted: report.submitted,
        completed: report.completed,
        failed: report.failed,
        act_bits: report.act_secs().to_bits(),
        ae_bits: report.average_efficiency().to_bits(),
        avg_rss_bits: report.avg_rss_size.to_bits(),
        throughput: exact(report.metrics.throughput_series()),
        act_series: exact(report.metrics.act_series()),
        ae_series: exact(report.metrics.ae_series()),
    }
}

fn run_sharded(cfg: &GridConfig, alg: Algorithm, shards: usize) -> SimulationReport {
    Scenario::build(cfg.clone().with_shards(shards))
        .unwrap()
        .simulate_algorithm(alg)
        .run()
}

/// Assert that S ∈ {2, 4, 8} all fingerprint-match the single-shard run of the same config.
fn assert_shard_independent(cfg: GridConfig, alg: Algorithm) {
    let base = run_sharded(&cfg, alg, 1);
    assert!(
        base.completed > 0,
        "{alg}: run must make progress for the pin to mean anything"
    );
    let base_fp = fingerprint(&base);
    for shards in [2, 4, 8] {
        let sharded = run_sharded(&cfg, alg, shards);
        assert_eq!(
            fingerprint(&sharded),
            base_fp,
            "{alg}: {shards} shards diverged from the single-shard run"
        );
    }
}

#[test]
fn static_grid_reports_are_shard_count_independent() {
    assert_shard_independent(config(91), Algorithm::Dsmf);
}

#[test]
fn full_ahead_baseline_is_shard_count_independent() {
    assert_shard_independent(config(92), Algorithm::Heft);
}

#[test]
fn churned_runs_are_shard_count_independent() {
    assert_shard_independent(
        config(93).with_churn(ChurnConfig::with_dynamic_factor(0.2)),
        Algorithm::Dsmf,
    );
}

#[test]
fn rescheduling_churn_runs_are_shard_count_independent() {
    assert_shard_independent(
        config(94)
            .with_churn(ChurnConfig::with_dynamic_factor(0.3))
            .with_recovery(RecoveryPolicy::unlimited_retry()),
        Algorithm::Dsmf,
    );
}

#[test]
fn heterogeneous_preemptive_runs_are_shard_count_independent() {
    assert_shard_independent(het_preemptive(95), Algorithm::Dsmf);
}

#[test]
fn multicore_runs_are_shard_count_independent() {
    assert_shard_independent(config(96).with_slots_per_node(4), Algorithm::Dsmf);
}

#[test]
fn observer_event_streams_are_shard_count_independent() {
    // Not just the report: the *full ordered observer stream* — every dispatch, start, finish,
    // displacement, churn event and sample, with timestamps — must replay identically for
    // every partition.  This pins the barrier's canonical merge order.
    let cfg = config(97).with_churn(ChurnConfig::with_dynamic_factor(0.15));
    let record = |shards: usize| {
        let mut trace = TraceRecorder::new();
        let report = Scenario::build(cfg.clone().with_shards(shards))
            .unwrap()
            .simulate_algorithm(Algorithm::Dsmf)
            .observe(&mut trace)
            .run();
        (fingerprint(&report), trace.events().to_vec())
    };
    let (base_fp, base_events) = record(1);
    assert!(!base_events.is_empty());
    for shards in [2, 4, 8] {
        let (fp, events) = record(shards);
        assert_eq!(fp, base_fp, "{shards} shards: report diverged");
        assert_eq!(
            events.len(),
            base_events.len(),
            "{shards} shards: event count diverged"
        );
        let first_diff = base_events.iter().zip(&events).position(|(a, b)| a != b);
        assert_eq!(
            first_diff, None,
            "{shards} shards: observer stream diverged at index {first_diff:?}"
        );
    }
}

#[test]
fn shard_spec_resolution_clamps_to_the_population() {
    // Asking for more shards than nodes degenerates gracefully to one node per shard.
    let cfg = config(98).with_shards(64);
    let session = Scenario::build(cfg)
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf);
    assert_eq!(session.shard_count(), 20);

    let auto = Scenario::build(config(98))
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf);
    assert!(auto.shard_count() >= 1);
}

#[test]
fn zero_shards_is_rejected_at_validation() {
    let mut cfg = config(99);
    cfg.shards = ShardSpec::Fixed(0);
    let err = Scenario::build(cfg).unwrap_err();
    assert!(err.to_string().contains("shard"), "unexpected error: {err}");
}

#[test]
fn shard_stats_expose_the_window_structure() {
    let scenario = Scenario::build(config(91).with_shards(4)).unwrap();
    let lookahead = scenario.lookahead();
    let mut session = scenario.simulate_algorithm(Algorithm::Dsmf);
    while session.step().is_some() {}
    let stats = session.shard_stats();
    assert_eq!(stats.shards, 4);
    assert!(stats.windows > 0);
    assert!(stats.events > 0);
    assert!(stats.max_window_width <= lookahead);
    // 20 nodes over 4 shards with cross-node data dependencies: some dispatch must have
    // crossed a shard boundary, and conservatively so.
    assert!(stats.cross_shard_events > 0);
    let min_delay = stats
        .min_cross_shard_delay
        .expect("cross-shard traffic implies a recorded minimum delay");
    assert!(
        min_delay >= lookahead,
        "cross-shard event delivered after {min_delay}, below the lookahead {lookahead}"
    );
}

proptest! {
    // Each case is a pair of full end-to-end runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seed, population, shard count and churn level: the sharded run matches the
    /// single-shard run exactly, and the conservative-window soundness invariants hold —
    /// the barrier never delivers a cross-shard event with less than one lookahead of delay,
    /// and no window is ever wider than the lookahead.
    #[test]
    fn prop_windows_are_conservative_and_shard_invariant(
        seed in 0u64..10_000,
        nodes in 8usize..24,
        shards in 2usize..9,
        df in 0.0f64..0.3,
    ) {
        let mut cfg = GridConfig::small(nodes).with_seed(seed);
        cfg.workflows_per_node = 1;
        cfg.workload.generator_mut().tasks = 2..=8;
        cfg.horizon = SimDuration::from_hours(10);
        let cfg = cfg.with_churn(ChurnConfig::with_dynamic_factor(df));

        let base = run_sharded(&cfg, Algorithm::Dsmf, 1);

        let scenario = Scenario::build(cfg.clone().with_shards(shards)).unwrap();
        let lookahead = scenario.lookahead();
        let mut session = scenario.simulate_algorithm(Algorithm::Dsmf);
        while session.step().is_some() {}
        let stats = session.shard_stats();
        prop_assert!(stats.windows > 0);
        prop_assert!(stats.max_window_width <= lookahead);
        if let Some(d) = stats.min_cross_shard_delay {
            prop_assert!(
                d >= lookahead,
                "cross-shard event delivered after {}, below the lookahead {}",
                d,
                lookahead
            );
        }
        let report = session.finish();
        prop_assert_eq!(fingerprint(&report), fingerprint(&base));
    }
}
