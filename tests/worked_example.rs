//! Integration test: the paper's Fig. 3 worked example exercised through the public facade.

use p2pgrid::core::estimate::{CandidateNode, FinishTimeEstimator};
use p2pgrid::core::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
use p2pgrid::core::worked_example;
use p2pgrid::core::Algorithm;
use p2pgrid::prelude::*;

fn unit_analysis(w: &Workflow) -> WorkflowAnalysis {
    WorkflowAnalysis::new(w, ExpectedCosts::new(1.0, 1.0))
}

#[test]
fn fig3_rpm_values_and_makespans() {
    let wa = worked_example::workflow_a();
    let wb = worked_example::workflow_b();
    let aa = unit_analysis(&wa);
    let ab = unit_analysis(&wb);
    let (a2, a3, b2, b3) = worked_example::schedule_points();
    assert_eq!(aa.rpm_secs(a2), 80.0);
    assert_eq!(aa.rpm_secs(a3), 115.0);
    assert_eq!(ab.rpm_secs(b2), 65.0);
    assert_eq!(ab.rpm_secs(b3), 60.0);
    // ms(A) = 115, ms(B) = 65 once A1/B1 have finished.
    assert_eq!(aa.rpm_secs(a3).max(aa.rpm_secs(a2)), 115.0);
    assert_eq!(ab.rpm_secs(b2).max(ab.rpm_secs(b3)), 65.0);
}

#[test]
fn fig3_dispatch_orders_for_dsmf_and_decreasing_rpm() {
    let wa = worked_example::workflow_a();
    let wb = worked_example::workflow_b();
    let aa = unit_analysis(&wa);
    let ab = unit_analysis(&wb);
    let (a2, a3, b2, b3) = worked_example::schedule_points();
    let mk = |wf: usize, w: &Workflow, an: &WorkflowAnalysis, t: TaskId, ms: f64| {
        DispatchCandidateTask {
            workflow: wf,
            task: t,
            load_mi: w.task(t).load_mi,
            image_size_mb: w.task(t).image_size_mb,
            rpm_secs: an.rpm_secs(t),
            workflow_ms_secs: ms,
            predecessors: vec![],
        }
    };
    let tasks = vec![
        mk(0, &wa, &aa, a2, 115.0),
        mk(0, &wa, &aa, a3, 115.0),
        mk(1, &wb, &ab, b2, 65.0),
        mk(1, &wb, &ab, b3, 65.0),
    ];
    let bw = |a: usize, b: usize| if a == b { f64::INFINITY } else { 1.0 };
    let est = FinishTimeEstimator::new(0, &bw);
    let idle = || -> Vec<CandidateNode> {
        (1..=3)
            .map(|i| CandidateNode::single_slot(i, 1.0, 0.0))
            .collect()
    };

    let order = |alg: Algorithm| -> Vec<(usize, u32)> {
        let mut candidates = idle();
        plan_dispatch(alg, &tasks, &mut candidates, &est)
            .iter()
            .map(|d| (d.workflow, d.task.0))
            .collect()
    };
    // Paper: DSMF order B2, B3, A3, A2; decreasing-RPM order A3, A2, B2, B3.
    assert_eq!(order(Algorithm::Dsmf), vec![(1, 1), (1, 2), (0, 2), (0, 1)]);
    assert_eq!(
        order(Algorithm::Dheft),
        vec![(0, 2), (0, 1), (1, 1), (1, 2)]
    );
}

#[test]
fn fig3_matrix_first_selections_for_min_min_and_max_min() {
    use p2pgrid::core::policy::first_phase::{matrix_pick_next, MatrixHeuristic};
    let ct = worked_example::finish_time_matrix();
    let remaining = [0usize, 1, 2, 3];
    // The paper: "the min-min and max-min algorithms will respectively select A2 and B2 first".
    let (t, _, _) = matrix_pick_next(MatrixHeuristic::MinMin, &ct, &remaining).unwrap();
    assert_eq!(t, 0, "min-min must pick A2 first");
    let (t, _, _) = matrix_pick_next(MatrixHeuristic::MaxMin, &ct, &remaining).unwrap();
    assert_eq!(t, 2, "max-min must pick B2 first");
}
