//! Integration tests of the observer seam: event-level invariants that aggregate reports
//! erase, asserted through the built-in [`TraceRecorder`] and [`TimeSeriesProbe`].

use p2pgrid::prelude::*;
use std::collections::HashSet;

fn config(nodes: usize, seed: u64) -> GridConfig {
    let mut cfg = GridConfig::small(nodes).with_seed(seed);
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=8;
    cfg
}

fn traced(cfg: GridConfig, alg: Algorithm) -> (SimulationReport, TraceRecorder) {
    let mut trace = TraceRecorder::new();
    let report = Scenario::build(cfg)
        .unwrap()
        .simulate_algorithm(alg)
        .observe(&mut trace)
        .run();
    (report, trace)
}

#[test]
fn trace_respects_the_task_lifecycle_order() {
    let (report, trace) = traced(config(16, 1), Algorithm::Dsmf);
    assert!(report.completed > 0);

    // Submissions fire once per workflow, at time zero, before anything else.
    let submissions = trace.count(|e| matches!(e, TraceEvent::WorkflowSubmitted { .. }));
    assert_eq!(submissions as u64, report.submitted);
    for (i, &(t, e)) in trace.events().iter().enumerate() {
        if matches!(e, TraceEvent::WorkflowSubmitted { .. }) {
            assert_eq!(t, SimTime::ZERO);
            assert!(i < submissions, "submissions must lead the trace");
        }
    }

    // Every start follows a dispatch of the same task; every finish follows a start.
    let mut dispatched: HashSet<(usize, TaskId)> = HashSet::new();
    let mut started: HashSet<(usize, TaskId)> = HashSet::new();
    let mut finished = 0u64;
    let mut last_time = SimTime::ZERO;
    for &(t, event) in trace.events() {
        assert!(t >= last_time, "trace must be in delivery order");
        last_time = t;
        match event {
            TraceEvent::TaskDispatched { wf, task, .. } => {
                dispatched.insert((wf, task));
            }
            TraceEvent::TaskStarted { wf, task, .. } => {
                assert!(
                    dispatched.contains(&(wf, task)),
                    "task ({wf}, {task:?}) started without a dispatch"
                );
                started.insert((wf, task));
            }
            TraceEvent::TaskFinished { wf, task, .. } => {
                assert!(
                    started.contains(&(wf, task)),
                    "task ({wf}, {task:?}) finished without a start"
                );
                finished += 1;
            }
            _ => {}
        }
    }
    assert!(finished > 0);

    // Completions match the report, and a static grid never fails or churns.
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::WorkflowCompleted { .. })) as u64,
        report.completed
    );
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::WorkflowFailed { .. })),
        0
    );
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::NodeDeparted { .. })),
        0
    );
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::NodeJoined { .. })),
        0
    );
    // Non-preemptive substrate: no displacements, ever.
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::TaskDisplaced { .. })),
        0
    );
    // Gossip ran every 5 minutes over 12 hours.
    assert!(trace.count(|e| matches!(e, TraceEvent::GossipCycle { .. })) >= 100);
}

#[test]
fn churn_events_and_failures_show_up_in_the_trace() {
    let cfg = config(24, 5).with_churn(ChurnConfig::with_dynamic_factor(0.3));
    let (report, trace) = traced(cfg, Algorithm::Dsmf);
    let departures = trace.count(|e| matches!(e, TraceEvent::NodeDeparted { .. }));
    let joins = trace.count(|e| matches!(e, TraceEvent::NodeJoined { .. }));
    assert!(departures > 0, "df = 0.3 must churn somebody");
    assert!(joins > 0);
    assert_eq!(
        trace.count(|e| matches!(e, TraceEvent::WorkflowFailed { .. })) as u64,
        report.failed
    );
    // Stable nodes never depart: home nodes of the churn sweep are in the stable half.
    let stable = 12; // 50% of 24
    for &(_, e) in trace.events() {
        if let TraceEvent::NodeDeparted { node } = e {
            assert!(node >= stable, "stable node {node} departed");
        }
    }
}

#[test]
fn displacements_appear_only_on_preemptive_substrates() {
    // A contended preemptive grid across a few seeds must displace at least once, and every
    // displaced task was running (started) at displacement time.
    let displaced_somewhere = (30..36).any(|seed| {
        let cfg = config(12, seed).with_resource(ResourceModel::single_cpu().preemptive());
        let (_, trace) = traced(cfg, Algorithm::Dsmf);
        let mut started: HashSet<(usize, TaskId)> = HashSet::new();
        let mut saw_displacement = false;
        for &(_, e) in trace.events() {
            match e {
                TraceEvent::TaskStarted { wf, task, .. } => {
                    started.insert((wf, task));
                }
                TraceEvent::TaskDisplaced { wf, task, .. } => {
                    assert!(started.contains(&(wf, task)));
                    saw_displacement = true;
                }
                _ => {}
            }
        }
        saw_displacement
    });
    assert!(
        displaced_somewhere,
        "no seed in the band ever triggered a preemption"
    );
}

#[test]
fn probe_samples_on_the_metrics_cadence() {
    let mut probe = TimeSeriesProbe::new();
    let report = Scenario::build(config(16, 9))
        .unwrap()
        .simulate_algorithm(Algorithm::Dsmf)
        .observe(&mut probe)
        .run();
    // One sample per metrics event plus the final report sample — exactly the series length.
    assert_eq!(
        probe.samples().len(),
        report.metrics.throughput_series().len()
    );
    let (_, peak) = probe.peak_ready_tasks().unwrap();
    assert!(peak > 0, "a contended grid must queue something at peak");
    for &(t, s) in probe.samples() {
        assert!(t <= report.end_time);
        assert_eq!(s.alive_nodes, 16);
        assert!(s.selectable_tasks <= s.ready_tasks);
        assert!(s.queued_load_mi >= 0.0);
    }
}

#[test]
fn mid_run_sampling_sees_live_backlog() {
    // Step a contended run to its middle and read live state; the observer's borrow releases
    // when the session is consumed, after which its recording is available for comparison.
    let mut probe = TimeSeriesProbe::new();
    let scenario = Scenario::build(config(16, 11)).unwrap();
    let mut session = scenario
        .simulate_algorithm(Algorithm::Dsmf)
        .observe(&mut probe);
    let mid = SimTime::ZERO + SimDuration::from_hours(6);
    session.run_until(mid);
    let live = session.sample();
    assert_eq!(live.alive_nodes, 16);
    assert!(live.selectable_tasks <= live.ready_tasks);
    let report = session.run();
    assert!(report.completed > 0);
    // The probe recorded samples both before and after the mid-point we paused at.
    assert!(probe.samples().iter().any(|&(t, _)| t <= mid));
    assert!(probe.samples().iter().any(|&(t, _)| t > mid));
}
