//! Determinism regression tests: the same `GridConfig` seed must reproduce a byte-identical
//! `SimulationReport` — submitted / completed / failed counts, ACT, AE and the full sampled
//! series — run after run.  This is what makes the engine refactor provably
//! behaviour-preserving: any accidental nondeterminism (hash-map iteration order leaking into
//! scheduling, float accumulation order changing between runs, heap tie-breaks depending on
//! allocation addresses) breaks these assertions immediately.

use p2pgrid::prelude::*;

fn config(seed: u64) -> GridConfig {
    let mut cfg = GridConfig::small(20).with_seed(seed);
    cfg.workflows_per_node = 2;
    cfg.workflow.tasks = 2..=10;
    cfg
}

/// One sampled series as exact bits: `(time in ms, f64 bit pattern)` per point.
type SeriesBits = Vec<(u64, u64)>;

/// Every externally observable field of a report, flattened for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    submitted: u64,
    completed: u64,
    failed: u64,
    act_bits: u64,
    ae_bits: u64,
    throughput: SeriesBits,
    act_series: SeriesBits,
    ae_series: SeriesBits,
}

fn fingerprint(report: &SimulationReport) -> Fingerprint {
    let exact = |series: &p2pgrid::metrics::TimeSeries| -> SeriesBits {
        series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_millis(), v.to_bits()))
            .collect()
    };
    Fingerprint {
        submitted: report.submitted,
        completed: report.completed,
        failed: report.failed,
        act_bits: report.act_secs().to_bits(),
        ae_bits: report.average_efficiency().to_bits(),
        throughput: exact(report.metrics.throughput_series()),
        act_series: exact(report.metrics.act_series()),
        ae_series: exact(report.metrics.ae_series()),
    }
}

#[test]
fn dsmf_reports_are_byte_identical_across_runs() {
    let a = GridSimulation::with_algorithm(config(71), Algorithm::Dsmf).run();
    let b = GridSimulation::with_algorithm(config(71), Algorithm::Dsmf).run();
    assert!(
        a.completed > 0,
        "run must make progress for the check to mean anything"
    );
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn heft_full_ahead_reports_are_byte_identical_across_runs() {
    let a = GridSimulation::with_algorithm(config(72), Algorithm::Heft).run();
    let b = GridSimulation::with_algorithm(config(72), Algorithm::Heft).run();
    assert!(a.completed > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn churned_runs_are_byte_identical_across_runs() {
    let cfg = || config(73).with_churn(ChurnConfig::with_dynamic_factor(0.2));
    let a = GridSimulation::with_algorithm(cfg(), Algorithm::Dsmf).run();
    let b = GridSimulation::with_algorithm(cfg(), Algorithm::Dsmf).run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn multicore_runs_are_byte_identical_across_runs() {
    let cfg = || config(74).with_slots_per_node(4);
    let a = GridSimulation::with_algorithm(cfg(), Algorithm::Dsmf).run();
    let b = GridSimulation::with_algorithm(cfg(), Algorithm::Dsmf).run();
    assert!(a.completed > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn heterogeneous_preemptive_runs_are_byte_identical_across_runs() {
    // The PR-3 substrate extensions: a weighted 80% single-core / 20% 16-core population with
    // the time-sliced preemptive policy must be exactly as reproducible as the paper model.
    let cfg = || {
        config(77).with_resource(
            ResourceModel::heterogeneous(vec![
                SlotClass {
                    slots: 1,
                    weight: 0.8,
                },
                SlotClass {
                    slots: 16,
                    weight: 0.2,
                },
            ])
            .preemptive(),
        )
    };
    let a = GridSimulation::with_algorithm(cfg(), Algorithm::Dsmf).run();
    let b = GridSimulation::with_algorithm(cfg(), Algorithm::Dsmf).run();
    assert!(a.completed > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn single_slot_runs_reproduce_the_paper_model_exactly() {
    // The multi-core estimator fix must leave slots_per_node = 1 untouched: an explicit
    // uniform single-slot resource model is byte-identical to the plain paper configuration.
    let plain = GridSimulation::with_algorithm(config(78), Algorithm::Dsmf).run();
    let uniform = GridSimulation::with_algorithm(
        config(78).with_resource(ResourceModel::single_cpu()),
        Algorithm::Dsmf,
    )
    .run();
    assert!(plain.completed > 0);
    assert_eq!(fingerprint(&plain), fingerprint(&uniform));
}

#[test]
fn different_seeds_change_the_fingerprint() {
    // Guards against the fingerprint being trivially constant.
    let a = GridSimulation::with_algorithm(config(75), Algorithm::Dsmf).run();
    let b = GridSimulation::with_algorithm(config(76), Algorithm::Dsmf).run();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}
