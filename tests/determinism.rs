//! Determinism regression tests: the same `GridConfig` seed must reproduce a byte-identical
//! `SimulationReport` — submitted / completed / failed counts, ACT, AE and the full sampled
//! series — run after run.  This is what makes the engine refactors provably
//! behaviour-preserving: any accidental nondeterminism (hash-map iteration order leaking into
//! scheduling, float accumulation order changing between runs, heap tie-breaks depending on
//! allocation addresses) breaks these assertions immediately.
//!
//! Since the Scenario/Session split, the same property also pins the *setup/run separation*:
//! a session started from a pre-built shared [`Scenario`] must be byte-identical to the legacy
//! consume-on-run `GridSimulation` path that rebuilt the world every time.

use p2pgrid::prelude::*;

fn config(seed: u64) -> GridConfig {
    let mut cfg = GridConfig::small(20).with_seed(seed);
    cfg.workflows_per_node = 2;
    cfg.workload.generator_mut().tasks = 2..=10;
    cfg
}

fn het_preemptive(seed: u64) -> GridConfig {
    config(seed).with_resource(
        ResourceModel::heterogeneous(vec![
            SlotClass {
                slots: 1,
                weight: 0.8,
            },
            SlotClass {
                slots: 16,
                weight: 0.2,
            },
        ])
        .preemptive(),
    )
}

/// The legacy one-shot facade, kept as a deprecated shim; these tests are its pin against the
/// scenario path.
#[allow(deprecated)]
fn legacy_run(cfg: GridConfig, alg: Algorithm) -> SimulationReport {
    GridSimulation::with_algorithm(cfg, alg).run()
}

fn scenario_run(cfg: GridConfig, alg: Algorithm) -> SimulationReport {
    Scenario::build(cfg).unwrap().simulate_algorithm(alg).run()
}

/// One sampled series as exact bits: `(time in ms, f64 bit pattern)` per point.
type SeriesBits = Vec<(u64, u64)>;

/// Every externally observable field of a report, flattened for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    submitted: u64,
    completed: u64,
    failed: u64,
    act_bits: u64,
    ae_bits: u64,
    throughput: SeriesBits,
    act_series: SeriesBits,
    ae_series: SeriesBits,
}

fn fingerprint(report: &SimulationReport) -> Fingerprint {
    let exact = |series: &p2pgrid::metrics::TimeSeries| -> SeriesBits {
        series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_millis(), v.to_bits()))
            .collect()
    };
    Fingerprint {
        submitted: report.submitted,
        completed: report.completed,
        failed: report.failed,
        act_bits: report.act_secs().to_bits(),
        ae_bits: report.average_efficiency().to_bits(),
        throughput: exact(report.metrics.throughput_series()),
        act_series: exact(report.metrics.act_series()),
        ae_series: exact(report.metrics.ae_series()),
    }
}

#[test]
fn dsmf_reports_are_byte_identical_across_runs() {
    let a = scenario_run(config(71), Algorithm::Dsmf);
    let b = scenario_run(config(71), Algorithm::Dsmf);
    assert!(
        a.completed > 0,
        "run must make progress for the check to mean anything"
    );
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn heft_full_ahead_reports_are_byte_identical_across_runs() {
    let a = scenario_run(config(72), Algorithm::Heft);
    let b = scenario_run(config(72), Algorithm::Heft);
    assert!(a.completed > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn churned_runs_are_byte_identical_across_runs() {
    let cfg = || config(73).with_churn(ChurnConfig::with_dynamic_factor(0.2));
    let a = scenario_run(cfg(), Algorithm::Dsmf);
    let b = scenario_run(cfg(), Algorithm::Dsmf);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn multicore_runs_are_byte_identical_across_runs() {
    let cfg = || config(74).with_slots_per_node(4);
    let a = scenario_run(cfg(), Algorithm::Dsmf);
    let b = scenario_run(cfg(), Algorithm::Dsmf);
    assert!(a.completed > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn heterogeneous_preemptive_runs_are_byte_identical_across_runs() {
    // The PR-3 substrate extensions: a weighted 80% single-core / 20% 16-core population with
    // the time-sliced preemptive policy must be exactly as reproducible as the paper model.
    let a = scenario_run(het_preemptive(77), Algorithm::Dsmf);
    let b = scenario_run(het_preemptive(77), Algorithm::Dsmf);
    assert!(a.completed > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn single_slot_runs_reproduce_the_paper_model_exactly() {
    // The multi-core estimator fix must leave slots_per_node = 1 untouched: an explicit
    // uniform single-slot resource model is byte-identical to the plain paper configuration.
    let plain = scenario_run(config(78), Algorithm::Dsmf);
    let uniform = scenario_run(
        config(78).with_resource(ResourceModel::single_cpu()),
        Algorithm::Dsmf,
    );
    assert!(plain.completed > 0);
    assert_eq!(fingerprint(&plain), fingerprint(&uniform));
}

#[test]
fn different_seeds_change_the_fingerprint() {
    // Guards against the fingerprint being trivially constant.
    let a = scenario_run(config(75), Algorithm::Dsmf);
    let b = scenario_run(config(76), Algorithm::Dsmf);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

// ----- the Scenario/Session split ------------------------------------------------------------

#[test]
fn one_scenario_run_twice_matches_two_fresh_legacy_runs() {
    // The headline reuse guarantee: build the world once, run DSMF twice — both sessions must
    // be byte-identical to two fresh legacy `GridSimulation` runs at the same seed.  Covers
    // the plain static grid, a churned grid and the heterogeneous+preemptive substrate, since
    // each exercises a different sampled/replayed RNG stream.
    let configs = [
        config(81),
        config(82).with_churn(ChurnConfig::with_dynamic_factor(0.2)),
        het_preemptive(83),
    ];
    for cfg in configs {
        let scenario = Scenario::build(cfg.clone()).unwrap();
        let first = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        let second = scenario.simulate_algorithm(Algorithm::Dsmf).run();
        let legacy_a = legacy_run(cfg.clone(), Algorithm::Dsmf);
        let legacy_b = legacy_run(cfg, Algorithm::Dsmf);
        assert!(first.completed > 0, "run must make progress");
        assert_eq!(fingerprint(&first), fingerprint(&second));
        assert_eq!(fingerprint(&first), fingerprint(&legacy_a));
        assert_eq!(fingerprint(&legacy_a), fingerprint(&legacy_b));
    }
}

#[test]
fn shared_scenario_eight_algorithm_sweep_matches_legacy_per_run_rebuild() {
    // The acceptance criterion of the Scenario split: one shared world across the full
    // eight-algorithm sweep produces byte-identical reports to the legacy path that rebuilt
    // the world for every algorithm.
    let scenario = Scenario::build(config(84)).unwrap();
    for alg in Algorithm::ALL {
        let shared = scenario.simulate_algorithm(alg).run();
        let rebuilt = legacy_run(config(84), alg);
        assert_eq!(
            fingerprint(&shared),
            fingerprint(&rebuilt),
            "{alg}: shared-scenario run diverged from the legacy rebuild"
        );
    }
}

#[test]
fn observers_and_stepping_do_not_perturb_the_run() {
    // Observer callbacks only copy event data out, and stepping delivers the same events in
    // the same order as the one-shot run: both must leave the report fingerprint untouched.
    let scenario = Scenario::build(config(85)).unwrap();
    let baseline = scenario.simulate_algorithm(Algorithm::Dsmf).run();

    let mut probe = TimeSeriesProbe::new();
    let mut trace = TraceRecorder::new();
    let observed = scenario
        .simulate_algorithm(Algorithm::Dsmf)
        .observe(&mut probe)
        .observe(&mut trace)
        .run();
    assert_eq!(fingerprint(&baseline), fingerprint(&observed));
    assert!(!probe.samples().is_empty());
    assert!(!trace.events().is_empty());

    let mut stepped_session = scenario.simulate_algorithm(Algorithm::Dsmf);
    let mut delivered = 0u64;
    while stepped_session.step().is_some() {
        delivered += 1;
    }
    assert!(delivered > 0);
    let stepped = stepped_session.finish();
    assert_eq!(fingerprint(&baseline), fingerprint(&stepped));
}
