//! Multi-core peers: a workload the paper never measured.
//!
//! The paper models every peer as a single, non-preemptive CPU.  The engine's `ResourceModel`
//! seam generalises that to N execution slots per node, so this example sweeps
//! slots-per-node ∈ {1, 2, 4} under DSMF on an otherwise identical contended grid and prints
//! how throughput, ACT and AE respond.  With more slots each node advertises proportionally
//! more aggregate capacity and drains its ready set concurrently, so queueing delay — the
//! dominant cost in the contended regime — collapses.
//!
//! ```text
//! cargo run --example multicore_grid
//! ```

use p2pgrid::prelude::*;

fn main() {
    let seed = 20100913;
    println!("DSMF on a contended 48-node grid, sweeping execution slots per node\n");
    println!(
        "{:>5}  {:>9}  {:>9}  {:>10}  {:>7}",
        "slots", "submitted", "finished", "ACT(s)", "AE"
    );
    for slots in [1usize, 2, 4] {
        let cfg = GridConfig::paper_default()
            .with_nodes(48)
            .with_load_factor(3)
            .with_slots_per_node(slots)
            .with_seed(seed);
        let report = Scenario::build(cfg)
            .expect("sweep config is valid")
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        println!(
            "{:>5}  {:>9}  {:>9}  {:>10.0}  {:>7.3}",
            slots,
            report.submitted,
            report.completed,
            report.act_secs(),
            report.average_efficiency()
        );
    }
    println!(
        "\nslots = 1 is exactly the paper's model; the seam only adds behaviour, never\n\
         changes the baseline.  ACT collapses as slots absorb the queueing delay.  The\n\
         model keeps the two rates separate everywhere — queues drain at the aggregate\n\
         capacity, while Formula 9, the RPM/makespan estimates and the eft(f) baseline\n\
         all use the per-slot rate a single task actually runs at — so multi-core peers\n\
         are no longer credited with running one task N× faster (see\n\
         examples/heterogeneous_grid.rs)."
    );
}
