//! The campaign server without sockets: an in-process loopback master, two workers, one of
//! which is killed mid-campaign — and the merged artifact still byte-identical to a plain
//! local run of the same spec.
//!
//! Run with `cargo run --release --example serve_campaign`.

use p2pgrid::prelude::*;
use p2pgrid::server::{Client, LoopbackMaster, MasterConfig, Step, Worker};

fn main() {
    // A campaign is plain data: scale × seeds × algorithms (× optional workload document).
    let spec = CampaignSpec {
        name: "loopback-demo".to_string(),
        scale: ExperimentScale::Smoke,
        seeds: vec![41, 42],
        algorithms: vec![Algorithm::Dsmf, Algorithm::Heft],
        workload: None,
    };

    // The reference: run the whole sweep in this process, no server anywhere.
    let local = p2pgrid::experiments::rununit::run_local(&spec).expect("local run");

    // The service: a master state machine behind the loopback transport.  Every message
    // still round-trips through its newline-delimited JSON wire encoding, so this exercises
    // the exact protocol the TCP binaries speak.
    let master = LoopbackMaster::new(MasterConfig {
        heartbeat_timeout_ms: 1_000,
        retry_budget: 3,
        backoff_ms: 100,
    });
    let mut client = Client::new(master.transport());
    let (job, units) = client.submit(&spec).expect("submit");
    println!("submitted {job}: {units} run-units");

    // Two workers; the second is rigged to die after executing one unit, while holding its
    // next assignment — the master's heartbeat expiry requeues the lost unit.
    let mut workers = vec![
        Worker::new(master.transport(), "steady"),
        Worker::new(master.transport(), "doomed").die_after(1),
    ];

    while client.status(job).expect("status").state == "running" {
        let mut progressed = false;
        workers.retain_mut(|w| match w.step() {
            Ok(Step::Executed { unit, .. }) => {
                println!("  executed unit {unit}");
                progressed = true;
                true
            }
            Ok(_) => true,
            Err(e) => {
                println!("  worker died: {e}");
                false
            }
        });
        if !progressed {
            // Nobody moved: advance the manual clock so expiry and retry backoff fire.
            master.advance_ms(600);
        }
    }

    let status = client.status(job).expect("status");
    println!("{}", status.render());
    let body = client.fetch(job).expect("fetch");
    let served = p2pgrid::experiments::rununit::render_result(&body);
    assert_eq!(
        served, local,
        "served artifact must equal the local run byte-for-byte"
    );
    println!(
        "served artifact is byte-identical to the local run ({} bytes)",
        served.len()
    );
}
