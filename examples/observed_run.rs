//! Watching a run from the inside: the Scenario / Session / Observer API.
//!
//! The paper's figures only show end-of-run aggregates; this example taps the engine's event
//! stream instead.  It builds one contended world, attaches the two built-in observers — a
//! [`TimeSeriesProbe`] sampling backlog depth on the metrics cadence and a [`TraceRecorder`]
//! capturing every engine event — and *steps* the session six simulated hours at a time,
//! printing the live grid state at each pause (something the one-shot facade could never do).
//!
//! Run with `cargo run --release --example observed_run`.

use p2pgrid::prelude::*;

fn main() {
    // One contended world: 48 peers, three workflows per home node.
    let config = GridConfig::paper_default()
        .with_nodes(48)
        .with_load_factor(3)
        .with_seed(20100913);
    let scenario = Scenario::build(config).expect("example config is valid");
    println!(
        "One world, built once: {} peers, {} workflows (true avg capacity {:.1} MIPS/slot)\n",
        scenario.node_count(),
        scenario.workflow_count(),
        scenario.expected_costs().avg_capacity_mips,
    );

    // Attach the built-in observers and walk the run in six-hour strides.
    let mut probe = TimeSeriesProbe::new();
    let mut trace = TraceRecorder::new();
    let mut session = scenario
        .simulate_algorithm(Algorithm::Dsmf)
        .observe(&mut probe)
        .observe(&mut trace);

    println!("hour   alive  ready  selectable  running  queued-load(MI)");
    let mut pause = SimTime::ZERO;
    while session.peek_time().is_some() {
        pause += SimDuration::from_hours(6);
        session.run_until(pause);
        let s = session.sample();
        println!(
            "{:>4.0}   {:>5}  {:>5}  {:>10}  {:>7}  {:>15.0}",
            session.now().as_hours_f64().ceil(),
            s.alive_nodes,
            s.ready_tasks,
            s.selectable_tasks,
            s.running_tasks,
            s.queued_load_mi
        );
    }
    let report = session.finish();

    // The observers' recordings outlive the session (they were only borrowed).
    println!("\n== end of run: {} ==", report.algorithm);
    println!(
        "finished {}/{} workflows, ACT {:.0} s, AE {:.3}",
        report.completed,
        report.submitted,
        report.act_secs(),
        report.average_efficiency()
    );
    if let Some((t, peak)) = probe.peak_ready_tasks() {
        println!(
            "peak backlog: {peak} queued tasks at hour {:.0}",
            t.as_hours_f64()
        );
    }
    if let Some((t, load)) = probe.peak_queued_load_mi() {
        println!(
            "peak queued load: {load:.0} MI at hour {:.0}",
            t.as_hours_f64()
        );
    }
    let count = |pred: fn(&TraceEvent) -> bool| trace.count(pred);
    println!(
        "trace: {} dispatches, {} starts, {} finishes, {} gossip cycles ({} events total)",
        count(|e| matches!(e, TraceEvent::TaskDispatched { .. })),
        count(|e| matches!(e, TraceEvent::TaskStarted { .. })),
        count(|e| matches!(e, TraceEvent::TaskFinished { .. })),
        count(|e| matches!(e, TraceEvent::GossipCycle { .. })),
        trace.events().len()
    );
    println!(
        "\nEvery number above came through the Observer seam — the engine itself was never\n\
         touched, and the same run without observers produces a byte-identical report\n\
         (pinned by tests/determinism.rs)."
    );
}
