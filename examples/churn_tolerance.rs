//! DSMF under node churn (a miniature Fig. 12–14), plus the paper's future-work extension
//! (re-scheduling tasks lost to departed nodes) as an ablation.
//!
//! Run with `cargo run --release --example churn_tolerance`.

use p2pgrid::prelude::*;

fn main() {
    let dynamic_factors = [0.0, 0.1, 0.2, 0.3, 0.4];
    println!("DSMF on a 96-node grid, 50% stable nodes, sweeping the dynamic factor");
    println!();
    println!(
        "{:<6} {:>10} {:>8} {:>10} {:>8}   {:>12}",
        "df", "finished", "failed", "ACT(s)", "AE", "mode"
    );

    for &df in &dynamic_factors {
        for (mode, reschedule) in [("paper", false), ("reschedule", true)] {
            if df == 0.0 && reschedule {
                continue; // identical to the paper mode without churn
            }
            let recovery = if reschedule {
                RecoveryPolicy::unlimited_retry()
            } else {
                RecoveryPolicy::FailWorkflow
            };
            let config = GridConfig::paper_default()
                .with_nodes(96)
                .with_load_factor(2)
                .with_churn(ChurnConfig::with_dynamic_factor(df))
                .with_recovery(recovery)
                .with_seed(4242);
            let report = Scenario::build(config)
                .expect("churn config is valid")
                .simulate_algorithm(Algorithm::Dsmf)
                .run();
            println!(
                "{:<6.1} {:>10} {:>8} {:>10.0} {:>8.3}   {:>12}",
                df,
                report.completed,
                report.failed,
                report.act_secs(),
                report.average_efficiency(),
                mode
            );
        }
    }

    println!();
    println!("Expected shape (paper §IV.B): throughput drops as df grows because workflows whose");
    println!("tasks sat on departed nodes are lost, while the finish time and efficiency of the");
    println!("workflows that do finish stay roughly stable for df <= 0.2.  The 'reschedule' rows");
    println!("implement the paper's future-work fix and recover most of the lost throughput.");
}
