//! Batched sweeps over copy-on-write derived worlds.
//!
//! Build one base world, derive a seed sweep from it with `Scenario::with_seed` (the whole
//! sweep shares the base's `Arc`'d topology / all-pairs-metrics / landmark tables, so it
//! pays for exactly one expensive build), then run every (world, algorithm) job across the
//! persistent work-stealing pool with `p2pgrid::experiments::campaign`.
//!
//! Run with `cargo run --release --example sweep_campaign`.  Set `P2PGRID_POOL_THREADS` to
//! size (or, with `=1`, disable) the pool.

use p2pgrid::experiments::campaign;
use p2pgrid::prelude::*;
use std::time::Instant;

fn main() {
    let mut config = GridConfig::paper_default().with_nodes(80).with_seed(1);
    config.workflows_per_node = 2;

    let t = Instant::now();
    let sweep = Campaign::from_config(config).expect("campaign config is valid");
    println!(
        "base world (80 peers) built in {:?} — the only topology/metrics build this run pays",
        t.elapsed()
    );

    // An 8-point replicate sweep: same network, eight independent re-samples of the workload.
    let seeds: Vec<u64> = (0..8).map(|s| 1000 + s).collect();
    let t = Instant::now();
    let scenarios = sweep
        .derive(&seeds, |base, &s| base.with_seed(s))
        .expect("derivation is valid");
    println!(
        "derived {} sweep points copy-on-write in {:?}",
        scenarios.len(),
        t.elapsed()
    );
    assert!(
        scenarios
            .iter()
            .all(|s| s.shares_topology_with(sweep.base())),
        "every sweep point must share the base topology tables"
    );

    let algorithms = [
        AlgorithmConfig::paper_default(Algorithm::Dsmf),
        AlgorithmConfig::paper_default(Algorithm::Dheft),
        AlgorithmConfig::paper_default(Algorithm::MinMin),
    ];
    let jobs = campaign::cross(&scenarios, &algorithms);
    let t = Instant::now();
    let reports = campaign::run(&jobs);
    println!(
        "ran {} sessions across {} pool workers in {:?}",
        jobs.len(),
        rayon::current_num_threads(),
        t.elapsed()
    );

    // Reports come back in job order (algorithm-major), so each algorithm's seed replicates
    // are one contiguous row.
    println!();
    println!("mean over {} seed replicates:", seeds.len());
    for (row, reports) in algorithms.iter().zip(reports.chunks(seeds.len())) {
        let n = reports.len() as f64;
        let act = reports.iter().map(|r| r.act_secs()).sum::<f64>() / n;
        let ae = reports.iter().map(|r| r.average_efficiency()).sum::<f64>() / n;
        let completed: u64 = reports.iter().map(|r| r.completed).sum();
        println!(
            "  {:<10} finished {:>4} workflows  mean ACT {:>8.0} s  mean AE {:>6.3}",
            row.algorithm.name(),
            completed,
            act,
            ae
        );
    }
    println!();
    println!("DSMF should keep the lowest mean ACT and the highest mean AE across replicates.");
}
