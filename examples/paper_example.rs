//! The paper's Fig. 3 worked example: two workflows on one scheduler node.
//!
//! Reproduces the quoted rest path makespans (RPM(A2)=80, RPM(A3)=115, RPM(B2)=65, RPM(B3)=60),
//! the workflow makespans (115 and 65) and the dispatch orders of DSMF versus the
//! decreasing-RPM (HEFT-style) ordering.
//!
//! Run with `cargo run --example paper_example`.

use p2pgrid::core::estimate::{CandidateNode, FinishTimeEstimator};
use p2pgrid::core::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
use p2pgrid::core::worked_example;
use p2pgrid::core::Algorithm;
use p2pgrid::prelude::*;

fn main() {
    let wa = worked_example::workflow_a();
    let wb = worked_example::workflow_b();
    // Fig. 3 annotates its DAGs directly with estimated execution/transmission times, which is
    // equivalent to unit average capacity and bandwidth.
    let costs = ExpectedCosts::new(1.0, 1.0);
    let aa = WorkflowAnalysis::new(&wa, costs);
    let ab = WorkflowAnalysis::new(&wb, costs);
    let (a2, a3, b2, b3) = worked_example::schedule_points();

    println!(
        "Workflow A ({} tasks), workflow B ({} tasks)",
        wa.task_count(),
        wb.task_count()
    );
    println!();
    println!("rest path makespans (paper values in parentheses):");
    println!("  RPM(A2) = {:>5.0}  (80)", aa.rpm_secs(a2));
    println!("  RPM(A3) = {:>5.0}  (115)", aa.rpm_secs(a3));
    println!("  RPM(B2) = {:>5.0}  (65)", ab.rpm_secs(b2));
    println!("  RPM(B3) = {:>5.0}  (60)", ab.rpm_secs(b3));
    println!();
    println!(
        "remaining makespans: ms(A) = {:.0} (115), ms(B) = {:.0} (65)",
        aa.rpm_secs(a3),
        ab.rpm_secs(b2)
    );

    // Three idle unit-capacity resource nodes, as in the figure.
    let bw = |x: usize, y: usize| if x == y { f64::INFINITY } else { 1.0 };
    let estimator = FinishTimeEstimator::new(0, &bw);
    let mk = |wf: usize, w: &Workflow, an: &WorkflowAnalysis, t: TaskId, ms: f64| {
        DispatchCandidateTask {
            workflow: wf,
            task: t,
            load_mi: w.task(t).load_mi,
            image_size_mb: w.task(t).image_size_mb,
            rpm_secs: an.rpm_secs(t),
            workflow_ms_secs: ms,
            predecessors: vec![],
        }
    };
    let tasks = vec![
        mk(0, &wa, &aa, a2, aa.rpm_secs(a3)),
        mk(0, &wa, &aa, a3, aa.rpm_secs(a3)),
        mk(1, &wb, &ab, b2, ab.rpm_secs(b2)),
        mk(1, &wb, &ab, b3, ab.rpm_secs(b2)),
    ];
    let name = |wf: usize, t: TaskId| {
        let w = if wf == 0 { &wa } else { &wb };
        w.task(t).name.clone().unwrap_or_else(|| t.to_string())
    };

    for (label, algorithm) in [
        ("DSMF", Algorithm::Dsmf),
        ("decreasing-RPM (HEFT-like)", Algorithm::Dheft),
    ] {
        let mut candidates: Vec<CandidateNode> = (1..=3)
            .map(|i| CandidateNode::single_slot(i, 1.0, 0.0))
            .collect();
        let order: Vec<String> = plan_dispatch(algorithm, &tasks, &mut candidates, &estimator)
            .iter()
            .map(|d| name(d.workflow, d.task))
            .collect();
        println!("{label:<28} dispatch order: {}", order.join(", "));
    }
    println!();
    println!("paper: DSMF order is B2, B3, A3, A2; plain decreasing-RPM order is A3, A2, B2, B3.");
}
