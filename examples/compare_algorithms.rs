//! Compare the eight schedulers of the paper on the same workload (a miniature Fig. 4–6).
//!
//! Run with `cargo run --release --example compare_algorithms [nodes]`.

use p2pgrid::experiments::static_comparison;
use p2pgrid::experiments::ExperimentScale;
use p2pgrid::prelude::*;

fn main() {
    // The reduced scale runs the full 36-hour horizon on ~120 nodes; pass a node count to run a
    // custom size instead.
    let custom_nodes: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let (scale, label) = (ExperimentScale::Reduced, "reduced (120 nodes)");

    let comparison = match custom_nodes {
        None => {
            println!("Running the 8-algorithm comparison at {label} scale...");
            static_comparison::run(scale, 20100913)
        }
        Some(n) => {
            println!("Running the 8-algorithm comparison on a custom {n}-node grid...");
            // The world is built once and shared by all eight (parallel) sessions.
            let cfg = GridConfig::paper_default()
                .with_nodes(n)
                .with_seed(20100913);
            let scenario = Scenario::build(cfg).expect("custom grid config is valid");
            static_comparison::run_on(&scenario)
        }
    };

    println!();
    println!("{}", comparison.summary_table());

    let headline = comparison.headline();
    println!(
        "DSMF vs other decentralized algorithms: ACT reduced by {:.1}%..{:.1}% (paper: 20..60%),",
        headline.act_reduction_pct.0, headline.act_reduction_pct.1
    );
    println!(
        "AE improved by {:.1}%..{:.1}% (paper: 37.5..90%).",
        headline.ae_improvement_pct.0, headline.ae_improvement_pct.1
    );

    println!();
    println!("throughput over time (workflows finished):");
    println!("{}", comparison.fig4_throughput().render());
}
