//! Regenerates the checked-in workload artifacts under `workloads/`.
//!
//! Each artifact is a `p2pgrid-workload/v1` document: a small library of named scientific
//! workflow DAGs (built from [`shapes`]) plus arrival entries binding submitted instances to
//! virtual arrival times and home-node policies.  The shapes follow the structure of three
//! widely used workflow benchmarks — Montage (astronomy mosaics), CyberShake (seismic hazard)
//! and Epigenomics (genome sequencing lanes) — at sizes small enough for CI smoke runs.
//!
//! Run with `cargo run --example export_workloads` from the repository root; the files are
//! written to `workloads/{montage,cybershake,epigenomics}.json`.  `repro --check-workloads
//! workloads` verifies they parse, validate and round-trip.

use p2pgrid::prelude::*;
use std::path::Path;

fn spec(name: &str, w: &Workflow) -> WorkflowSpec {
    WorkflowSpec::from_workflow(name, w).expect("library shapes have unique task names")
}

fn entry(workflow: &str, submit_at_ms: u64, home: HomePolicy) -> WorkloadEntry {
    WorkloadEntry {
        workflow: workflow.into(),
        submit_at_ms,
        home,
    }
}

fn montage() -> WorkloadSpec {
    // Two mosaic sizes; a second wave arrives mid-campaign.  One instance is pinned to
    // node 0 (always stable) to exercise explicit home placement.
    WorkloadSpec {
        name: "montage".into(),
        workflows: vec![
            spec("montage-4", &shapes::montage_like(4, 2000.0, 400.0)),
            spec("montage-8", &shapes::montage_like(8, 2500.0, 600.0)),
        ],
        entries: vec![
            entry("montage-4", 0, HomePolicy::Auto),
            entry("montage-8", 0, HomePolicy::Node(0)),
            entry("montage-4", 600_000, HomePolicy::Auto),
            entry("montage-8", 1_800_000, HomePolicy::Auto),
            entry("montage-4", 3_600_000, HomePolicy::Auto),
        ],
    }
}

fn cybershake() -> WorkloadSpec {
    // Per-site strain-green-tensor fan-out with per-site synthesis stages and a global
    // hazard-curve join; two problem sizes, staggered arrivals.
    WorkloadSpec {
        name: "cybershake".into(),
        workflows: vec![
            spec(
                "cybershake-2x3",
                &shapes::cybershake_like(2, 3, 1500.0, 2000.0),
            ),
            spec(
                "cybershake-3x4",
                &shapes::cybershake_like(3, 4, 1800.0, 2500.0),
            ),
        ],
        entries: vec![
            entry("cybershake-2x3", 0, HomePolicy::Auto),
            entry("cybershake-3x4", 900_000, HomePolicy::Auto),
            entry("cybershake-2x3", 2_700_000, HomePolicy::Auto),
        ],
    }
}

fn epigenomics() -> WorkloadSpec {
    // Independent per-lane pipelines merging into a global mapping/indexing tail; the lane
    // pipelines are long chains, so this shape stresses depth rather than width.
    WorkloadSpec {
        name: "epigenomics".into(),
        workflows: vec![
            spec("epigenomics-3", &shapes::epigenomics_like(3, 3000.0, 300.0)),
            spec("epigenomics-5", &shapes::epigenomics_like(5, 3500.0, 350.0)),
        ],
        entries: vec![
            entry("epigenomics-3", 0, HomePolicy::Auto),
            entry("epigenomics-5", 1_200_000, HomePolicy::Auto),
            entry("epigenomics-3", 2_400_000, HomePolicy::Auto),
        ],
    }
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("workloads");
    std::fs::create_dir_all(&dir).expect("create workloads/");
    for wl in [montage(), cybershake(), epigenomics()] {
        // Fail fast if an artifact would not validate on load.
        let resolved = wl.resolve().expect("artifact must resolve");
        let path = dir.join(format!("{}.json", wl.name));
        wl.save(&path).expect("write artifact");
        println!(
            "wrote {} ({} workflows, {} entries, {} tasks total, last arrival {:.0} min)",
            path.display(),
            wl.workflows.len(),
            wl.entry_count(),
            resolved
                .iter()
                .map(|e| e.workflow.task_count())
                .sum::<usize>(),
            wl.last_arrival_ms() as f64 / 60_000.0
        );
    }
}
