//! Quickstart: build a small P2P grid, submit workflows and schedule them with DSMF.
//!
//! Run with `cargo run --release --example quickstart`.

use p2pgrid::prelude::*;

fn main() {
    // A 64-peer grid with Table I's heterogeneous capacities, two workflows per home node.
    // `Scenario::build` pre-samples the whole world (topology, bandwidths, capacities,
    // workflows) from the seed; the session then runs DSMF over it.
    let config = GridConfig::small(64).with_load_factor(2).with_seed(7);
    println!(
        "Simulating {} peers x {} workflows/node for {:.0} hours under DSMF...",
        config.nodes,
        config.workflows_per_node,
        config.horizon.as_hours_f64()
    );

    let scenario = Scenario::build(config).expect("quickstart config is valid");
    let report = scenario.simulate_algorithm(Algorithm::Dsmf).run();

    println!();
    println!("submitted workflows : {}", report.submitted);
    println!("finished workflows  : {}", report.completed);
    println!("average completion  : {:.0} s (Eq. 2)", report.act_secs());
    println!(
        "average efficiency  : {:.3} (Eq. 3)",
        report.average_efficiency()
    );
    println!(
        "avg RSS size        : {:.1} peers known per node",
        report.avg_rss_size
    );
    println!(
        "gossip traffic      : {} messages, {} bytes",
        report.gossip_stats.epidemic_messages + report.gossip_stats.aggregation_exchanges,
        report.gossip_stats.bytes_sent
    );

    println!();
    println!("hour  finished");
    for &(t, v) in report.metrics.throughput_series().points() {
        if (t.as_hours_f64().fract()).abs() < 1e-9 && (t.as_hours_f64() as u64).is_multiple_of(4) {
            println!("{:>4.0}  {:>8.0}", t.as_hours_f64(), v);
        }
    }
}
