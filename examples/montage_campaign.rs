//! A domain-specific scenario: a campaign of Montage-style astronomy workflows submitted from a
//! handful of laboratory gateways into a volunteer P2P grid.
//!
//! This is the kind of workload the paper's introduction motivates (scientific workflows with
//! complex dependencies on geographically dispersed idle resources).  It uses the public
//! workflow-builder API directly instead of the random generator, and contrasts DSMF with the
//! decentralized HEFT variant on exactly the same campaign.
//!
//! Run with `cargo run --release --example montage_campaign`.

use p2pgrid::core::estimate::{CandidateNode, FinishTimeEstimator};
use p2pgrid::core::policy::first_phase::{plan_dispatch, DispatchCandidateTask};
use p2pgrid::core::Algorithm;
use p2pgrid::prelude::*;

fn main() {
    // 1. Shape of one Montage-like workflow: fan-out of re-projections, pairwise background
    //    fits, a model step and a final mosaic.
    let mosaic = shapes::montage_like(6, 2000.0, 400.0);
    println!(
        "One Montage-style workflow: {} tasks, {} edges, total load {:.0} MI, total data {:.0} Mb",
        mosaic.task_count(),
        mosaic.edge_count(),
        mosaic.total_load_mi(),
        mosaic.total_data_mb()
    );
    let costs = ExpectedCosts::new(6.2, 5.0); // Table I averages
    let analysis = WorkflowAnalysis::new(&mosaic, costs);
    println!(
        "expected finish time eft(f) = {:.0} s; critical path has {} tasks; CCR = {:.2}",
        analysis.expected_finish_time_secs(),
        analysis.critical_path().len(),
        mosaic.ccr(6.2, 5.0)
    );

    // 2. How a home node would prioritise the first wave of ready tasks (after the stage-in
    //    task finished) across three volunteer machines it knows about.
    let bw = |a: usize, b: usize| if a == b { f64::INFINITY } else { 2.0 };
    let estimator = FinishTimeEstimator::new(0, &bw);
    let mut candidates = vec![
        CandidateNode::single_slot(10, 16.0, 4000.0),
        CandidateNode::single_slot(11, 8.0, 0.0),
        CandidateNode::single_slot(12, 2.0, 0.0),
    ];
    let entry = mosaic.entry();
    let ready: Vec<DispatchCandidateTask> = mosaic
        .successors(entry)
        .iter()
        .map(|e| DispatchCandidateTask {
            workflow: 0,
            task: e.task,
            load_mi: mosaic.task(e.task).load_mi,
            image_size_mb: mosaic.task(e.task).image_size_mb,
            rpm_secs: analysis.rpm_secs(e.task),
            workflow_ms_secs: analysis.expected_finish_time_secs(),
            predecessors: vec![],
        })
        .collect();
    println!();
    println!(
        "first-wave dispatch of the {} re-projection tasks (DSMF):",
        ready.len()
    );
    for d in plan_dispatch(Algorithm::Dsmf, &ready, &mut candidates, &estimator) {
        let name = mosaic.task(d.task).name.clone().unwrap_or_default();
        println!(
            "  {:<12} -> node {:<3} (estimated finish {:>7.0} s)",
            name, d.target, d.estimated_finish_secs
        );
    }

    // 3. A whole campaign on a 80-node volunteer grid: DSMF versus decentralized HEFT.
    println!();
    println!("Campaign: 80 volunteer peers, 3 workflows per gateway, 36 simulated hours");
    let mut config = GridConfig::paper_default()
        .with_nodes(80)
        .with_load_factor(3)
        .with_seed(777);
    // Montage-like mix: moderately heavy tasks, sizeable mosaics to ship around.
    config.workflow.tasks = 8..=24;
    config.workflow.load_mi = 500.0..=5000.0;
    config.workflow.data_mb = 50.0..=2000.0;
    // One campaign world, three schedulers: the comparison is on identical workloads by
    // construction, and the expensive setup is paid once.
    let campaign = Scenario::build(config).expect("campaign config is valid");
    for algorithm in [Algorithm::Dsmf, Algorithm::Dheft, Algorithm::MinMin] {
        let report = campaign.simulate_algorithm(algorithm).run();
        println!(
            "  {:<10} finished {:>4}/{:<4}  ACT {:>8.0} s  AE {:>6.3}",
            report.algorithm,
            report.completed,
            report.submitted,
            report.act_secs(),
            report.average_efficiency()
        );
    }
    println!();
    println!("DSMF should finish the campaign with a lower ACT and a higher AE than the");
    println!("decentralized HEFT and min-min variants, mirroring Fig. 5/6 of the paper.");
}
