//! Heterogeneous and preemptive substrates: the ROADMAP's resource-model extensions.
//!
//! Part 1 shows the fixed Formula 9 on multi-core peers: a 16-slot node and a 16 MIPS
//! single-core node advertise the same aggregate capacity, but a single long task now gets
//! *different* finish estimates on them (per-slot execution vs aggregate queue drain), so DSMF
//! no longer over-selects multi-core peers for single long tasks.
//!
//! Part 2 sweeps three substrates over an otherwise identical contended grid under DSMF:
//!
//! * **uniform** — the paper's single non-preemptive CPU per node;
//! * **heterogeneous** — 80% single-core / 20% 16-core volunteer machines, deterministically
//!   sampled per seed;
//! * **heterogeneous + preemptive** — the same population with the time-sliced policy, where a
//!   newly ready higher-priority task displaces the lowest-priority running task back into the
//!   ready heap with its remaining load.
//!
//! ```text
//! cargo run --release --example heterogeneous_grid
//! ```

use p2pgrid::core::policy::first_phase::DispatchCandidateTask;
use p2pgrid::core::{CandidateNode, FinishTimeEstimator, Scheduler};
use p2pgrid::prelude::*;
use p2pgrid::workflow::TaskId;

fn main() {
    single_task_placement_demo();
    substrate_sweep();
}

/// One long task, two candidates of equal aggregate capacity: placement must follow the
/// per-slot rate, not the aggregate.
fn single_task_placement_demo() {
    let multi = CandidateNode {
        node: 0,
        capacity_mips: 16.0, // aggregate of 16 × 1 MIPS slots
        slots: 16,
        total_load_mi: 0.0,
    };
    let single = CandidateNode::single_slot(1, 16.0, 0.0);
    let bw = |a: usize, b: usize| if a == b { f64::INFINITY } else { 5.0 };
    let estimator = FinishTimeEstimator::new(1, &bw);
    let load_mi = 8_000.0;

    println!("Single 8 000 MI task, two candidates with a 16 MIPS aggregate:\n");
    for c in [&multi, &single] {
        println!(
            "  node {} — {:>2} slot(s) × {:>4.1} MIPS/slot: estimated finish {:>6.0} s",
            c.node,
            c.slots,
            c.per_slot_capacity_mips(),
            estimator.finish_time_secs(c, load_mi, 0.0, &[]),
        );
    }
    let task = DispatchCandidateTask {
        workflow: 0,
        task: TaskId(0),
        load_mi,
        image_size_mb: 0.0,
        rpm_secs: 1.0,
        workflow_ms_secs: 1.0,
        predecessors: vec![],
    };
    let mut candidates = vec![multi, single];
    let scheduler = AlgorithmConfig::paper_default(Algorithm::Dsmf);
    let decisions = scheduler.plan_dispatch(&[task], &mut candidates, &estimator);
    println!(
        "\nDSMF places the task on node {} — the fast single core, not the slot farm.\n",
        decisions[0].target
    );
}

/// Throughput / ACT / AE across the three substrates on the same contended grid.
fn substrate_sweep() {
    let seed = 20100913;
    let volunteer_classes = || {
        vec![
            SlotClass {
                slots: 1,
                weight: 0.8,
            },
            SlotClass {
                slots: 16,
                weight: 0.2,
            },
        ]
    };
    let substrates: [(&str, ResourceModel); 3] = [
        ("uniform 1-slot", ResourceModel::single_cpu()),
        (
            "heterogeneous 80/20",
            ResourceModel::heterogeneous(volunteer_classes()),
        ),
        (
            "heterogeneous + preemptive",
            ResourceModel::heterogeneous(volunteer_classes()).preemptive(),
        ),
    ];

    println!("DSMF on a contended 48-node grid, sweeping the execution substrate\n");
    println!(
        "{:<28}  {:>9}  {:>9}  {:>10}  {:>7}",
        "substrate", "submitted", "finished", "ACT(s)", "AE"
    );
    for (label, resource) in substrates {
        let cfg = GridConfig::paper_default()
            .with_nodes(48)
            .with_load_factor(3)
            .with_resource(resource)
            .with_seed(seed);
        let report = Scenario::build(cfg)
            .expect("substrate config is valid")
            .simulate_algorithm(Algorithm::Dsmf)
            .run();
        println!(
            "{:<28}  {:>9}  {:>9}  {:>10.0}  {:>7.3}",
            label,
            report.submitted,
            report.completed,
            report.act_secs(),
            report.average_efficiency()
        );
    }
    println!(
        "\nThe heterogeneous population concentrates 80% of the aggregate capacity in a few\n\
         16-slot nodes; with the per-slot estimator DSMF routes long tasks to fast single\n\
         cores and queues of short tasks to the slot farms.  Preemption then lets short-\n\
         makespan arrivals cut ahead of long residents on contended nodes."
    );
}
