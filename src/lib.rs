//! # p2pgrid — dual-phase just-in-time workflow scheduling in P2P grid systems
//!
//! A from-scratch Rust reproduction of
//! *Di & Wang, "Dual-phase Just-in-time Workflow Scheduling in P2P Grid Systems", ICPP 2010*:
//! the **DSMF** (dynamic shortest makespan first) heuristic, its seven comparison schedulers,
//! and every substrate the evaluation depends on (a PeerSim-style simulation engine, a
//! Brite/Waxman WAN model, a mixed gossip resource-discovery protocol, a DAG workflow model and
//! the experiment harness regenerating every figure of the paper).
//!
//! This crate is a thin facade that re-exports the workspace crates under stable module names.
//!
//! ## Quickstart
//!
//! Build the world once ([`Scenario`](core::scenario::Scenario)), then run any number of
//! scheduler sessions on it — optionally observing the event stream:
//!
//! ```
//! use p2pgrid::prelude::*;
//!
//! // A small grid (32 peers), two workflows per home node, pre-sampled from the seed.
//! let scenario = Scenario::build(GridConfig::small(32).with_seed(42)).unwrap();
//!
//! // Run DSMF on it, recording the backlog time series along the way.
//! let mut probe = TimeSeriesProbe::new();
//! let report = scenario
//!     .simulate_algorithm(Algorithm::Dsmf)
//!     .observe(&mut probe)
//!     .run();
//! assert!(report.completed > 0);
//!
//! // The same world is reusable: compare another scheduler on the identical workload.
//! let heft = scenario.simulate_algorithm(Algorithm::Heft).run();
//! assert_eq!(report.submitted, heft.submitted);
//! println!(
//!     "DSMF finished {} workflows (ACT {:.0}s), peak backlog {:?}",
//!     report.completed,
//!     report.act_secs(),
//!     probe.peak_ready_tasks()
//! );
//! ```
//!
//! See `examples/` for larger scenarios (the Fig. 3 worked example, an eight-algorithm
//! comparison, churn tolerance and a Montage-style campaign) and the `repro` binary in
//! `p2pgrid-experiments` for full figure regeneration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// The scheduling core: DSMF, the seven baselines and the grid simulation.
pub use p2pgrid_core as core;
/// Experiment runners regenerating the paper's figures.
pub use p2pgrid_experiments as experiments;
/// The mixed gossip resource-discovery substrate.
pub use p2pgrid_gossip as gossip;
/// Metrics: throughput, ACT (Eq. 2) and AE (Eq. 3).
pub use p2pgrid_metrics as metrics;
/// The campaign server: master/worker sweep execution as a service.
pub use p2pgrid_server as server;
/// The deterministic discrete-event simulation engine.
pub use p2pgrid_sim as sim;
/// The Waxman WAN topology substrate.
pub use p2pgrid_topology as topology;
/// The workflow (DAG) model.
pub use p2pgrid_workflow as workflow;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    #[allow(deprecated)]
    pub use p2pgrid_core::GridSimulation;
    pub use p2pgrid_core::{
        Algorithm, AlgorithmConfig, ArrivalProcess, CapacityModel, ChurnConfig, ConfigError,
        CorrelatedOutage, FaultModel, GridConfig, GridSample, Observer, PreemptionPolicy,
        RecoveryPolicy, ResourceModel, Scenario, SecondPhase, ShardSpec, ShardStats, Simulation,
        SimulationReport, SlotClass, SlotModel, StochasticFaults, StreamKind, StreamSeeds,
        TimeSeriesProbe, TraceEvent, TraceRecorder, WorkloadSource,
    };
    pub use p2pgrid_experiments::{Campaign, CampaignSpec, ExperimentScale};
    pub use p2pgrid_metrics::{RobustnessStats, WorkflowMetrics, WorkflowRecord};
    pub use p2pgrid_sim::{SimDuration, SimRng, SimTime};
    pub use p2pgrid_topology::{Topology, WaxmanConfig, WaxmanGenerator};
    pub use p2pgrid_workflow::{
        shapes, ExpectedCosts, HomePolicy, SpecError, Task, TaskId, Workflow, WorkflowAnalysis,
        WorkflowBuilder, WorkflowGenerator, WorkflowGeneratorConfig, WorkflowSpec, WorkloadEntry,
        WorkloadSpec,
    };
}
